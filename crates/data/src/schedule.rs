//! Activity timelines: what the simulated user is doing at each instant.
//!
//! The closed-loop experiments of the paper are driven by how often the user changes
//! activity: Fig. 5 uses an explicit "sit 60 s, then walk 60 s" scenario, and Fig. 7
//! compares three *user activity settings* — High (activity changes every ~10 s),
//! Medium, and Low (the user keeps an activity for at least a minute).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activity::Activity;

/// One contiguous stretch of a single activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The activity performed during this segment.
    pub activity: Activity,
    /// Duration of the segment, in seconds.
    pub duration_s: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn new(activity: Activity, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "segment duration must be positive, got {duration_s}");
        Self { activity, duration_s }
    }
}

/// A timeline of activity segments starting at time zero.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ActivitySchedule {
    segments: Vec<Segment>,
}

impl ActivitySchedule {
    /// Creates a schedule from a list of segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        Self { segments }
    }

    /// A fluent builder for explicit schedules.
    pub fn builder() -> ScheduleBuilder {
        ScheduleBuilder::new()
    }

    /// The segments of the schedule.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total duration of the schedule, in seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// The activity performed at time `t` seconds.
    ///
    /// Times before zero clamp to the first segment; times at or beyond the end clamp
    /// to the last segment.  Returns `None` only for an empty schedule.
    pub fn activity_at(&self, t: f64) -> Option<Activity> {
        if self.segments.is_empty() {
            return None;
        }
        if t <= 0.0 {
            return Some(self.segments[0].activity);
        }
        let mut elapsed = 0.0;
        for segment in &self.segments {
            elapsed += segment.duration_s;
            if t < elapsed {
                return Some(segment.activity);
            }
        }
        self.segments.last().map(|s| s.activity)
    }

    /// The times (seconds) at which the activity changes.
    pub fn change_times(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut elapsed = 0.0;
        for pair in self.segments.windows(2) {
            elapsed += pair[0].duration_s;
            if pair[1].activity != pair[0].activity {
                out.push(elapsed);
            }
        }
        out
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the schedule has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Concatenates several schedules into one timeline, in order.
    pub fn concat(parts: impl IntoIterator<Item = ActivitySchedule>) -> Self {
        let mut segments = Vec::new();
        for part in parts {
            segments.extend(part.segments);
        }
        Self { segments }
    }

    /// Total seconds this schedule spends in `activity`.
    pub fn time_in(&self, activity: Activity) -> f64 {
        self.segments.iter().filter(|s| s.activity == activity).map(|s| s.duration_s).sum()
    }

    /// The Fig. 5 scenario of the paper: sit for `sit_s` seconds, then walk for
    /// `walk_s` seconds.
    pub fn sit_then_walk(sit_s: f64, walk_s: f64) -> Self {
        Self::builder().then(Activity::Sit, sit_s).then(Activity::Walk, walk_s).build()
    }

    /// Generates a randomized schedule of roughly `total_duration_s` seconds in which
    /// the dwell time of each activity follows `setting`.
    ///
    /// Consecutive segments always have different activities.
    pub fn random<R: Rng + ?Sized>(
        setting: ActivityChangeSetting,
        total_duration_s: f64,
        rng: &mut R,
    ) -> Self {
        let mut segments: Vec<Segment> = Vec::new();
        let mut elapsed = 0.0;
        let mut previous: Option<Activity> = None;
        while elapsed < total_duration_s {
            let activity = loop {
                let candidate = Activity::ALL[rng.random_range(0..Activity::COUNT)];
                if Some(candidate) != previous {
                    break candidate;
                }
            };
            let (lo, hi) = setting.dwell_range_s();
            let duration = rng.random_range(lo..hi);
            segments.push(Segment::new(activity, duration));
            elapsed += duration;
            previous = Some(activity);
        }
        Self { segments }
    }
}

impl FromIterator<Segment> for ActivitySchedule {
    fn from_iter<T: IntoIterator<Item = Segment>>(iter: T) -> Self {
        Self { segments: iter.into_iter().collect() }
    }
}

/// A schedule segment whose dwell time is drawn per realization: `dwell_s`
/// scaled by a uniform factor in `[1 - jitter, 1 + jitter)`.
///
/// These are the building blocks of composed daily-routine scripts: a routine
/// is a cycle of jittered segments, so two devices living the same routine
/// under different seeds produce different — but statistically matched —
/// timelines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitteredSegment {
    /// The activity performed during the segment.
    pub activity: Activity,
    /// Nominal dwell time, in seconds.
    pub dwell_s: f64,
    /// Relative jitter applied to the dwell time (`0.0..1.0`).
    pub jitter: f64,
}

impl JitteredSegment {
    /// Creates a jittered segment.
    ///
    /// # Panics
    ///
    /// Panics if `dwell_s` is not strictly positive or `jitter` is outside
    /// `[0, 1)` (a jitter of 1 could realize a zero-length segment).
    pub fn new(activity: Activity, dwell_s: f64, jitter: f64) -> Self {
        assert!(dwell_s > 0.0, "nominal dwell must be positive, got {dwell_s}");
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1), got {jitter}");
        Self { activity, dwell_s, jitter }
    }

    /// Draws one concrete [`Segment`], scaling the nominal dwell by `scale`
    /// (a per-subject transition bias) and by a uniform jitter factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive (a zero scale would realize a
    /// zero-length segment).
    pub fn realize<R: Rng + ?Sized>(&self, scale: f64, rng: &mut R) -> Segment {
        assert!(scale > 0.0, "dwell scale must be positive, got {scale}");
        let factor = if self.jitter > 0.0 {
            rng.random_range((1.0 - self.jitter)..(1.0 + self.jitter))
        } else {
            1.0
        };
        Segment::new(self.activity, self.dwell_s * scale * factor)
    }
}

/// Builder for explicit activity schedules.
#[derive(Debug, Clone, Default)]
pub struct ScheduleBuilder {
    segments: Vec<Segment>,
}

impl ScheduleBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment of `activity` lasting `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn then(mut self, activity: Activity, duration_s: f64) -> Self {
        self.segments.push(Segment::new(activity, duration_s));
        self
    }

    /// Appends every segment of an existing schedule.
    pub fn extend(mut self, schedule: &ActivitySchedule) -> Self {
        self.segments.extend_from_slice(schedule.segments());
        self
    }

    /// Finishes the schedule.
    pub fn build(self) -> ActivitySchedule {
        ActivitySchedule::new(self.segments)
    }
}

/// How frequently the simulated user changes activity (x-axis of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityChangeSetting {
    /// Unstable user: the activity changes roughly every 10 seconds.
    High,
    /// Typical user: the activity changes roughly every half minute.
    Medium,
    /// Stable user: each activity lasts at least a minute.
    Low,
}

impl ActivityChangeSetting {
    /// All three settings in the order used by Fig. 7.
    pub const ALL: [ActivityChangeSetting; 3] =
        [ActivityChangeSetting::High, ActivityChangeSetting::Medium, ActivityChangeSetting::Low];

    /// The dwell-time range (seconds) for one activity segment under this setting.
    pub fn dwell_range_s(self) -> (f64, f64) {
        match self {
            ActivityChangeSetting::High => (8.0, 14.0),
            ActivityChangeSetting::Medium => (25.0, 40.0),
            ActivityChangeSetting::Low => (60.0, 120.0),
        }
    }

    /// The label used in Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            ActivityChangeSetting::High => "High",
            ActivityChangeSetting::Medium => "Medium",
            ActivityChangeSetting::Low => "Low",
        }
    }
}

impl std::fmt::Display for ActivityChangeSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_preserves_order_and_durations() {
        let schedule = ActivitySchedule::builder()
            .then(Activity::Sit, 10.0)
            .then(Activity::Walk, 20.0)
            .then(Activity::Stand, 5.0)
            .build();
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.total_duration_s(), 35.0);
        assert_eq!(schedule.segments()[1].activity, Activity::Walk);
    }

    #[test]
    fn activity_at_selects_the_right_segment() {
        let schedule = ActivitySchedule::sit_then_walk(60.0, 60.0);
        assert_eq!(schedule.activity_at(0.0), Some(Activity::Sit));
        assert_eq!(schedule.activity_at(59.9), Some(Activity::Sit));
        assert_eq!(schedule.activity_at(60.0), Some(Activity::Walk));
        assert_eq!(schedule.activity_at(119.9), Some(Activity::Walk));
        // Clamping behaviour at the boundaries.
        assert_eq!(schedule.activity_at(-5.0), Some(Activity::Sit));
        assert_eq!(schedule.activity_at(500.0), Some(Activity::Walk));
    }

    #[test]
    fn empty_schedule_has_no_activity() {
        let schedule = ActivitySchedule::default();
        assert!(schedule.is_empty());
        assert_eq!(schedule.activity_at(1.0), None);
        assert_eq!(schedule.total_duration_s(), 0.0);
    }

    #[test]
    fn change_times_reports_transitions_only() {
        let schedule = ActivitySchedule::builder()
            .then(Activity::Sit, 10.0)
            .then(Activity::Sit, 5.0)
            .then(Activity::Walk, 10.0)
            .build();
        assert_eq!(schedule.change_times(), vec![15.0]);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_segments_are_rejected() {
        let _ = Segment::new(Activity::Walk, 0.0);
    }

    #[test]
    fn random_schedules_cover_the_requested_duration() {
        let mut rng = StdRng::seed_from_u64(5);
        for setting in ActivityChangeSetting::ALL {
            let schedule = ActivitySchedule::random(setting, 600.0, &mut rng);
            assert!(schedule.total_duration_s() >= 600.0);
            assert!(!schedule.is_empty());
        }
    }

    #[test]
    fn random_schedules_never_repeat_consecutive_activities() {
        let mut rng = StdRng::seed_from_u64(17);
        let schedule = ActivitySchedule::random(ActivityChangeSetting::High, 2000.0, &mut rng);
        for pair in schedule.segments().windows(2) {
            assert_ne!(pair[0].activity, pair[1].activity);
        }
    }

    #[test]
    fn dwell_times_respect_the_setting() {
        let mut rng = StdRng::seed_from_u64(23);
        let high = ActivitySchedule::random(ActivityChangeSetting::High, 1000.0, &mut rng);
        let low = ActivitySchedule::random(ActivityChangeSetting::Low, 1000.0, &mut rng);
        let mean = |s: &ActivitySchedule| s.total_duration_s() / s.len() as f64;
        assert!(mean(&high) < 15.0);
        assert!(mean(&low) >= 60.0);
    }

    #[test]
    fn high_setting_changes_roughly_every_ten_seconds() {
        // The paper defines High as "changes every 10 seconds".
        let (lo, hi) = ActivityChangeSetting::High.dwell_range_s();
        assert!(lo <= 10.0 && 10.0 <= hi);
        let (lo, _) = ActivityChangeSetting::Low.dwell_range_s();
        assert!(lo >= 60.0, "Low setting keeps an activity for at least a minute");
    }

    #[test]
    fn concat_and_extend_preserve_segment_order() {
        let morning = ActivitySchedule::sit_then_walk(10.0, 5.0);
        let evening = ActivitySchedule::builder().then(Activity::LieDown, 20.0).build();
        let day = ActivitySchedule::concat([morning.clone(), evening.clone()]);
        assert_eq!(day.len(), 3);
        assert_eq!(day.total_duration_s(), 35.0);
        assert_eq!(day.activity_at(34.0), Some(Activity::LieDown));
        let extended = ActivitySchedule::builder().extend(&morning).extend(&evening).build();
        assert_eq!(extended, day);
    }

    #[test]
    fn time_in_sums_per_activity_seconds() {
        let schedule = ActivitySchedule::builder()
            .then(Activity::Sit, 10.0)
            .then(Activity::Walk, 5.0)
            .then(Activity::Sit, 2.5)
            .build();
        assert_eq!(schedule.time_in(Activity::Sit), 12.5);
        assert_eq!(schedule.time_in(Activity::Walk), 5.0);
        assert_eq!(schedule.time_in(Activity::Upstairs), 0.0);
    }

    #[test]
    fn jittered_segments_realize_within_their_bounds() {
        let mut rng = StdRng::seed_from_u64(31);
        let jittered = JitteredSegment::new(Activity::Walk, 100.0, 0.25);
        for _ in 0..200 {
            let segment = jittered.realize(1.0, &mut rng);
            assert_eq!(segment.activity, Activity::Walk);
            assert!(segment.duration_s >= 75.0 && segment.duration_s < 125.0);
        }
        let scaled = jittered.realize(2.0, &mut rng);
        assert!(scaled.duration_s >= 150.0 && scaled.duration_s < 250.0);
        let exact = JitteredSegment::new(Activity::Sit, 7.0, 0.0).realize(1.0, &mut rng);
        assert_eq!(exact.duration_s, 7.0);
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1)")]
    fn full_jitter_is_rejected() {
        let _ = JitteredSegment::new(Activity::Sit, 1.0, 1.0);
    }

    #[test]
    fn schedule_collects_from_iterator() {
        let schedule: ActivitySchedule =
            vec![Segment::new(Activity::Sit, 1.0), Segment::new(Activity::Walk, 2.0)]
                .into_iter()
                .collect();
        assert_eq!(schedule.len(), 2);
    }
}
