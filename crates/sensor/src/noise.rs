//! Averaging-dependent measurement noise model.
//!
//! The paper motivates the accuracy loss of small averaging windows by "the noise due
//! to using lower averaging windows" (Section IV-B).  This module models the output
//! noise of one accelerometer reading as white Gaussian noise whose standard
//! deviation shrinks with the square root of the averaging window, plus a fixed
//! noise floor, with an extra penalty factor in low-power mode (the BMI160's
//! low-power under-sampling path is noisier than the normal-mode filter chain).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::{OperationMode, SensorConfig};
use crate::energy::EnergyModel;

/// Parameters of the measurement noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of a single internal (un-averaged) sample, in g.
    pub raw_noise_std_g: f64,
    /// Noise floor that averaging cannot remove, in g.
    pub noise_floor_g: f64,
    /// Multiplicative noise penalty applied in low-power mode.
    pub low_power_factor: f64,
}

impl NoiseModel {
    /// A model calibrated so that the largest averaging window (128) is almost
    /// noise-free while the smallest (8) produces visibly degraded features.
    ///
    /// The absolute values are deliberately on the high side of the BMI160
    /// datasheet so that the *classification accuracy* spread across the Table I
    /// configurations matches the ~91–98 % range of the paper's Fig. 2; the paper's
    /// own accuracy loss at small averaging windows comes from exactly this noise.
    pub fn bmi160() -> Self {
        Self { raw_noise_std_g: 0.22, noise_floor_g: 0.006, low_power_factor: 1.35 }
    }

    /// A noiseless model, useful for deterministic tests.
    pub fn noiseless() -> Self {
        Self { raw_noise_std_g: 0.0, noise_floor_g: 0.0, low_power_factor: 1.0 }
    }

    /// Standard deviation of one output sample under the given configuration, in g.
    ///
    /// ```
    /// use adasense_sensor::{AveragingWindow, NoiseModel, SamplingFrequency, SensorConfig};
    /// let n = NoiseModel::bmi160();
    /// let clean = n.output_noise_std_g(SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128));
    /// let noisy = n.output_noise_std_g(SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8));
    /// assert!(noisy > clean);
    /// ```
    pub fn output_noise_std_g(&self, config: SensorConfig) -> f64 {
        self.output_noise_std_for(config, EnergyModel::bmi160().operation_mode(config))
    }

    /// Standard deviation of one output sample given an explicit operation mode.
    pub fn output_noise_std_for(&self, config: SensorConfig, mode: OperationMode) -> f64 {
        let averaged = self.raw_noise_std_g / f64::from(config.averaging.samples()).sqrt();
        let mode_factor = match mode {
            OperationMode::Normal => 1.0,
            OperationMode::LowPower => self.low_power_factor,
        };
        self.noise_floor_g + averaged * mode_factor
    }

    /// Draws one zero-mean Gaussian noise value with the output standard deviation
    /// for `config` in `mode`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        config: SensorConfig,
        mode: OperationMode,
        rng: &mut R,
    ) -> f64 {
        let std = self.output_noise_std_for(config, mode);
        if std == 0.0 {
            0.0
        } else {
            std * gaussian(rng)
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::bmi160()
    }
}

/// Draws a standard-normal value using the Box–Muller transform.
///
/// Implemented here to avoid pulling in a distributions crate; the quality is more
/// than sufficient for simulation noise.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AveragingWindow, SamplingFrequency};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(f: SamplingFrequency, a: AveragingWindow) -> SensorConfig {
        SensorConfig::new(f, a)
    }

    #[test]
    fn noise_decreases_with_larger_averaging_window() {
        let n = NoiseModel::bmi160();
        let stds: Vec<f64> = AveragingWindow::ALL
            .iter()
            .map(|&a| {
                n.output_noise_std_for(cfg(SamplingFrequency::F25, a), OperationMode::LowPower)
            })
            .collect();
        for pair in stds.windows(2) {
            assert!(pair[0] > pair[1], "noise must shrink as the window grows: {stds:?}");
        }
    }

    #[test]
    fn low_power_mode_is_noisier_than_normal_mode() {
        let n = NoiseModel::bmi160();
        let c = cfg(SamplingFrequency::F25, AveragingWindow::A16);
        assert!(
            n.output_noise_std_for(c, OperationMode::LowPower)
                > n.output_noise_std_for(c, OperationMode::Normal)
        );
    }

    #[test]
    fn noiseless_model_produces_exact_zero() {
        let n = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(
                n.sample(
                    cfg(SamplingFrequency::F50, AveragingWindow::A8),
                    OperationMode::LowPower,
                    &mut rng
                ),
                0.0
            );
        }
    }

    #[test]
    fn gaussian_sampler_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let values: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn sampled_noise_matches_requested_std() {
        let n = NoiseModel::bmi160();
        let c = cfg(SamplingFrequency::F12_5, AveragingWindow::A8);
        let target = n.output_noise_std_for(c, OperationMode::LowPower);
        let mut rng = StdRng::seed_from_u64(7);
        let count = 20_000;
        let values: Vec<f64> =
            (0..count).map(|_| n.sample(c, OperationMode::LowPower, &mut rng)).collect();
        let var = values.iter().map(|v| v * v).sum::<f64>() / count as f64;
        assert!((var.sqrt() - target).abs() / target < 0.05);
    }
}
