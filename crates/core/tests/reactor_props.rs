//! Property-based test for the ingestion reactor's kill-and-resume path: tear
//! the connection at an *arbitrary* byte offset mid-stream, let the reactor
//! reconnect with a RESUME frame, and require the replayed fleet to be
//! bit-identical to the scenario-driven reference — no batch lost, none
//! duplicated, regardless of where the cut landed (inside a length prefix,
//! mid-sample, one byte short of the END frame, …).

#![cfg(unix)]

use std::sync::OnceLock;

use adasense::ingest::{TelemetryTrace, TraceRecorder};
use adasense::prelude::*;
use proptest::prelude::*;

/// Trains the quick system once for every proptest case.
fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec::quick();
        let system = TrainedSystem::train(&spec).expect("quick training succeeds");
        (spec, system)
    })
}

/// The fleet every case replays: small enough to keep a case under a couple
/// of seconds, long enough that streams span many frames.
fn test_fleet(seed: u64) -> FleetSpec {
    let mut fleet = FleetSpec::new(2, 6.0, seed);
    // Fault exposure is a capture-side property a replayed feed cannot
    // observe, and bit-identity requires rows with `faulted_epochs == 0`.
    fleet.population = PopulationSpec::single(RoutinePreset::OfficeDay, FaultLevel::None);
    fleet
}

/// Records every device of `fleet` as a wire-format trace, exactly as the
/// scheduler would have produced it.
fn record_traces(fleet: &FleetSpec) -> Vec<(u64, TelemetryTrace)> {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    (0..fleet.devices)
        .map(|device_id| {
            let plan = fleet.device_plan(device_id);
            let recorder = TraceRecorder::new(scheduler.device_source(fleet, &plan));
            let mut runtime = DeviceRuntime::for_source(
                spec,
                system,
                fleet.controller,
                recorder,
                plan.scenario.duration_s(),
            )
            .expect("runtime construction succeeds")
            .with_classifier(system.backend(plan.backend));
            runtime.run_to_completion();
            (device_id, runtime.source().trace().clone())
        })
        .collect()
}

/// Field-by-field bit comparison of two summary rows (plain `==` would paper
/// over NaN and signed-zero differences in the float fields).
fn rows_bit_identical(a: &DeviceSummary, b: &DeviceSummary) -> bool {
    a.device_id == b.device_id
        && a.seed == b.seed
        && a.routine == b.routine
        && a.backend == b.backend
        && a.faulted_epochs == b.faulted_epochs
        && a.epochs == b.epochs
        && a.correct_epochs == b.correct_epochs
        && a.accuracy.to_bits() == b.accuracy.to_bits()
        && a.average_current_ua.to_bits() == b.average_current_ua.to_bits()
        && a.total_charge_uc.to_bits() == b.total_charge_uc.to_bits()
        && a.duration_s.to_bits() == b.duration_s.to_bits()
        && a.residency_s.len() == b.residency_s.len()
        && a.residency_s.iter().zip(&b.residency_s).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill every device's first connection at an arbitrary byte offset; the
    /// resumed fleet must reproduce the scenario-driven run bit for bit.
    #[test]
    fn kill_anywhere_resume_is_bit_identical(
        seed in 0u64..1000,
        kill_fraction in 0f64..1.0,
    ) {
        let (spec, system) = shared_system();
        let fleet = test_fleet(seed);
        let scheduler = FleetScheduler::new(spec, system);
        let reference = scheduler.run_collect(&fleet).expect("reference run succeeds");

        let traces = record_traces(&fleet);
        let stream_len =
            traces.iter().map(|(_, t)| t.encode().len()).max().expect("fleet is non-empty");
        // Anywhere from "before the first full frame" to "one byte short of
        // a complete stream" (the server clamps so END is never delivered).
        let kill_at = ((stream_len as f64 * kill_fraction) as usize).max(1);

        let mut serve = TelemetryServe::bind("127.0.0.1:0", traces)
            .expect("loopback bind succeeds")
            .with_kill_at(kill_at);
        let addr = serve.local_addr().to_string();
        let devices = fleet.devices;
        let server = std::thread::spawn(move || {
            serve.serve_streams(devices, 50).map(|()| serve.stats())
        });

        let mut reactor = IngestReactor::new().with_policy(ReconnectPolicy {
            attempts: 10,
            delay: std::time::Duration::from_millis(1),
        });
        let feeds: Vec<_> = (0..fleet.devices)
            .map(|device_id| {
                let plan = fleet.device_plan(device_id);
                ExternalDevice::new(plan.device_id, reactor.subscribe(&addr, device_id))
                    .with_metadata(plan.seed, plan.routine.clone())
                    .with_backend(plan.backend)
            })
            .collect();
        let reactor = std::thread::spawn(move || reactor.run());

        let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
        let live = scheduler
            .builder()
            .spec(&feed_only)
            .feeds(feeds)
            .collect()
            .run()
            .expect("live run succeeds");

        let stats = reactor.join().expect("reactor thread").expect("no feed fails");
        let serve_stats = server.join().expect("server thread").expect("server completes");

        prop_assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
        prop_assert_eq!(stats.completed, fleet.devices);
        // Every first stream was torn, so every device reconnected.
        prop_assert!(
            stats.reconnects >= fleet.devices,
            "kill at byte {} produced only {} reconnects",
            kill_at,
            stats.reconnects
        );
        prop_assert_eq!(serve_stats.killed_streams, fleet.devices);

        prop_assert_eq!(
            live.report.encode(),
            reference.report.encode(),
            "fleet report differs after kill at byte {}",
            kill_at
        );
        prop_assert_eq!(live.summaries.len(), reference.summaries.len());
        for (a, b) in reference.summaries.iter().zip(&live.summaries) {
            prop_assert!(
                rows_bit_identical(a, b),
                "device {} differs after kill at byte {}:\n  reference: {:?}\n  live:      {:?}",
                a.device_id,
                kill_at,
                a,
                b
            );
        }
    }
}
