//! Softmax and cross-entropy loss.

use crate::matrix::Matrix;

/// Numerically stable softmax of one logit vector.
///
/// ```
/// use adasense_ml::loss::softmax;
/// let p = softmax(&[1.0, 1.0, 1.0]);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|v| v / sum).collect()
}

/// Row-wise softmax of a logits matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = logits.cols();
    for r in 0..logits.rows() {
        let probs = softmax(logits.row(r));
        for (c, &p) in probs.iter().enumerate().take(cols) {
            out.set(r, c, p);
        }
    }
    out
}

/// Mean cross-entropy of row-wise probabilities against integer labels.
///
/// # Panics
///
/// Panics if the number of labels differs from the number of rows or a label is out
/// of range.
pub fn cross_entropy(probabilities: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(probabilities.rows(), labels.len(), "one label per row required");
    if labels.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < probabilities.cols(), "label {label} out of range");
        let p = probabilities.get(r, label).max(1e-12);
        total -= p.ln();
    }
    total / labels.len() as f64
}

/// Gradient of the mean softmax cross-entropy with respect to the logits:
/// `(softmax(logits) - onehot(labels)) / batch_size`.
pub fn softmax_cross_entropy_grad(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    let probs = softmax_rows(logits);
    let loss = cross_entropy(&probs, labels);
    let mut grad = probs;
    let n = labels.len().max(1) as f64;
    for (r, &label) in labels.iter().enumerate() {
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    let grad = grad.map(|v| v / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&[3.0, 1.0, -2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!(p[0] > 0.999 && p[1] < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_zero() {
        let probs = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(cross_entropy(&probs, &[0, 1]) < 1e-9);
    }

    #[test]
    fn cross_entropy_of_uniform_prediction_is_log_classes() {
        let probs = Matrix::from_rows(&[vec![0.25; 4]]);
        assert!((cross_entropy(&probs, &[2]) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.2, 0.7], vec![-1.0, 0.4, 0.1]]);
        let labels = [2usize, 1usize];
        let (_, grad) = softmax_cross_entropy_grad(&logits, &labels);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let lp = cross_entropy(&softmax_rows(&plus), &labels);
                let lm = cross_entropy(&softmax_rows(&minus), &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-5,
                    "grad mismatch at ({r},{c}): analytic {} numeric {numeric}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_labels_are_rejected() {
        let probs = Matrix::from_rows(&[vec![0.5, 0.5]]);
        let _ = cross_entropy(&probs, &[3]);
    }
}
