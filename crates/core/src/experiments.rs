//! One experiment runner per paper table / figure.
//!
//! | Runner | Reproduces |
//! |---|---|
//! | [`config_table`] | Table I (the 16 sensor configurations, with modelled mode, duty cycle, current and noise) |
//! | [`DesignSpaceExploration`](crate::dse::DesignSpaceExploration) | Fig. 2 (accuracy / current trade-off and Pareto front) |
//! | [`behavioural_trace`] | Fig. 5 (120-second sit→walk trace of the sensor current under SPOT) |
//! | [`stability_sweep`] | Fig. 6a and 6b (accuracy and power vs stability threshold, for the baseline, SPOT and SPOT with confidence) |
//! | [`iba_comparison`] | Fig. 7 (power and accuracy vs the intensity-based approach under High/Medium/Low activity settings) |
//! | [`memory_report`] | Section V-D memory comparison (single unified classifier vs per-configuration classifier bank) |
//!
//! Each runner returns a serializable report with a `to_table_string` rendering so
//! the `adasense-bench` binaries can print the same rows/series the paper reports.

use adasense_data::{Activity, ActivityChangeSetting};
use adasense_ml::{MemoryFootprint, MlpConfig};
use adasense_sensor::{EnergyModel, NoiseModel, SensorConfig};
use serde::{Deserialize, Serialize};

use crate::controller::ControllerKind;
use crate::error::AdaSenseError;
use crate::fleet::{mean as average, FleetScheduler};
use crate::simulation::{ScenarioSpec, SimulationReport, Simulator};
use crate::training::{ExperimentSpec, TrainedSystem};

// ---------------------------------------------------------------------------
// Table I — sensor configuration table
// ---------------------------------------------------------------------------

/// One row of the Table I report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTableRow {
    /// The configuration.
    pub config: SensorConfig,
    /// Operation mode implied by the energy model.
    pub mode: String,
    /// Duty cycle of the sensor core (1.0 in normal mode).
    pub duty_cycle: f64,
    /// Modelled average current, in µA.
    pub current_ua: f64,
    /// Modelled output noise standard deviation, in g.
    pub noise_std_g: f64,
}

/// The Table I report: every configuration with its modelled properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTableReport {
    /// One row per Table I configuration.
    pub rows: Vec<ConfigTableRow>,
}

impl ConfigTableReport {
    /// Renders the report as a plain-text table.
    pub fn to_table_string(&self) -> String {
        let mut out =
            String::from("configuration     mode        duty    current(uA)   noise(mg)\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<17} {:<10} {:>6.3} {:>13.1} {:>10.1}\n",
                row.config.label(),
                row.mode,
                row.duty_cycle,
                row.current_ua,
                1000.0 * row.noise_std_g
            ));
        }
        out
    }
}

/// Builds the Table I report from the given energy and noise models.
pub fn config_table(energy: &EnergyModel, noise: &NoiseModel) -> ConfigTableReport {
    let rows = SensorConfig::table_i()
        .into_iter()
        .map(|config| ConfigTableRow {
            config,
            mode: energy.operation_mode(config).to_string(),
            duty_cycle: energy.duty_cycle(config),
            current_ua: energy.current_ua(config),
            noise_std_g: noise.output_noise_std_for(config, energy.operation_mode(config)),
        })
        .collect();
    ConfigTableReport { rows }
}

// ---------------------------------------------------------------------------
// Fig. 5 — behavioural trace
// ---------------------------------------------------------------------------

/// The Fig. 5 report: the per-second current trace of a sit→walk scenario under
/// SPOT, plus the time it takes to settle into the lowest-power state after each
/// activity change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviouralTraceReport {
    /// The underlying simulation run.
    pub simulation: SimulationReport,
    /// Seconds after the start at which the sensor first reaches the lowest-power
    /// state.
    pub first_settle_s: Option<f64>,
    /// Seconds after the activity change at which the sensor reaches the
    /// lowest-power state again.
    pub resettle_after_change_s: Option<f64>,
    /// The time of the activity change in the scenario.
    pub change_time_s: f64,
}

impl BehaviouralTraceReport {
    /// Renders the `(t, current)` series plus the settle times.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("t(s)   config          current(uA)  predicted    actual\n");
        for r in self.simulation.records() {
            out.push_str(&format!(
                "{:>5.0}  {:<15} {:>11.1}  {:<12} {}\n",
                r.t_s,
                r.config.label(),
                r.current_ua,
                r.predicted.name(),
                r.actual.name()
            ));
        }
        out.push_str(&format!(
            "settle after start: {:?} s, settle after activity change: {:?} s\n",
            self.first_settle_s, self.resettle_after_change_s
        ));
        out
    }
}

/// Runs the Fig. 5 behavioural analysis: `sit_s` seconds of sitting followed by
/// `walk_s` seconds of walking, under SPOT with the given stability threshold.
///
/// # Errors
///
/// Propagates simulation errors (degenerate scenarios).
pub fn behavioural_trace(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
    stability_threshold: u32,
    sit_s: f64,
    walk_s: f64,
) -> Result<BehaviouralTraceReport, AdaSenseError> {
    let scenario = ScenarioSpec::sit_then_walk(sit_s, walk_s);
    let simulation = Simulator::new(spec, system)
        .with_controller(ControllerKind::Spot { stability_threshold })
        .run(scenario)?;
    let lowest = SensorConfig::paper_pareto_front()[3];
    let first_settle_s = simulation.records().iter().find(|r| r.config == lowest).map(|r| r.t_s);
    let resettle_after_change_s = simulation
        .records()
        .iter()
        .filter(|r| r.t_s > sit_s)
        .find(|r| r.config == lowest)
        .map(|r| r.t_s - sit_s);
    Ok(BehaviouralTraceReport {
        simulation,
        first_settle_s,
        resettle_after_change_s,
        change_time_s: sit_s,
    })
}

// ---------------------------------------------------------------------------
// Fig. 6a / 6b — stability-threshold sweep
// ---------------------------------------------------------------------------

/// Parameters of the stability-threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilitySweepSettings {
    /// The stability thresholds (seconds) to evaluate.
    pub thresholds: Vec<u32>,
    /// Confidence threshold of the SPOT-with-confidence controller (0.85 in the
    /// paper).
    pub confidence_threshold: f64,
    /// Duration of each simulated scenario, in seconds.
    pub scenario_duration_s: f64,
    /// Number of randomized scenarios averaged per point.
    pub scenarios_per_point: usize,
    /// Dwell-time distribution of the scenarios.
    pub setting: ActivityChangeSetting,
    /// Base seed for scenario generation.
    pub seed: u64,
}

impl StabilitySweepSettings {
    /// The paper-scale sweep: thresholds 0–60 s in 5 s steps over several
    /// five-minute scenarios.
    pub fn paper() -> Self {
        Self {
            thresholds: (0..=60).step_by(5).collect(),
            confidence_threshold: 0.85,
            scenario_duration_s: 300.0,
            scenarios_per_point: 4,
            setting: ActivityChangeSetting::Medium,
            seed: 60,
        }
    }

    /// A reduced sweep for tests and doc examples.
    pub fn quick() -> Self {
        Self {
            thresholds: vec![0, 5, 10],
            scenario_duration_s: 60.0,
            scenarios_per_point: 1,
            ..Self::paper()
        }
    }
}

impl Default for StabilitySweepSettings {
    fn default() -> Self {
        Self::paper()
    }
}

/// Accuracy and power of the three controllers at one stability-threshold value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilitySweepPoint {
    /// The stability threshold, in seconds.
    pub threshold_s: u32,
    /// Baseline (static `F100_A128`) accuracy.
    pub baseline_accuracy: f64,
    /// Baseline average current, in µA.
    pub baseline_current_ua: f64,
    /// SPOT accuracy.
    pub spot_accuracy: f64,
    /// SPOT average current, in µA.
    pub spot_current_ua: f64,
    /// SPOT-with-confidence accuracy.
    pub spot_confidence_accuracy: f64,
    /// SPOT-with-confidence average current, in µA.
    pub spot_confidence_current_ua: f64,
}

/// The Fig. 6a / 6b report: one [`StabilitySweepPoint`] per threshold plus the
/// sweep-average power reductions the paper quotes (60 % for SPOT, 69 % for SPOT
/// with confidence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilitySweepReport {
    /// The sweep settings used.
    pub settings: StabilitySweepSettings,
    /// One point per threshold.
    pub points: Vec<StabilitySweepPoint>,
}

impl StabilitySweepReport {
    /// Average power reduction of SPOT vs the baseline over the whole sweep (0–1).
    pub fn average_spot_reduction(&self) -> f64 {
        average(self.points.iter().map(|p| 1.0 - p.spot_current_ua / p.baseline_current_ua))
    }

    /// Average power reduction of SPOT with confidence vs the baseline (0–1).
    pub fn average_spot_confidence_reduction(&self) -> f64 {
        average(
            self.points.iter().map(|p| 1.0 - p.spot_confidence_current_ua / p.baseline_current_ua),
        )
    }

    /// Worst-case accuracy drop of SPOT vs the baseline across the sweep (0–1).
    pub fn max_spot_accuracy_drop(&self) -> f64 {
        self.points.iter().map(|p| p.baseline_accuracy - p.spot_accuracy).fold(0.0, f64::max)
    }

    /// Renders the Fig. 6a (accuracy) and Fig. 6b (power) series as a table.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "threshold(s)  base_acc(%)  spot_acc(%)  conf_acc(%)  base_uA  spot_uA  conf_uA\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>12} {:>12.2} {:>12.2} {:>12.2} {:>8.1} {:>8.1} {:>8.1}\n",
                p.threshold_s,
                100.0 * p.baseline_accuracy,
                100.0 * p.spot_accuracy,
                100.0 * p.spot_confidence_accuracy,
                p.baseline_current_ua,
                p.spot_current_ua,
                p.spot_confidence_current_ua
            ));
        }
        out.push_str(&format!(
            "average power reduction: SPOT {:.1}%, SPOT+confidence {:.1}%\n",
            100.0 * self.average_spot_reduction(),
            100.0 * self.average_spot_confidence_reduction()
        ));
        out
    }
}

/// Runs the Fig. 6 sweep: for every stability threshold, simulates the baseline,
/// SPOT and SPOT-with-confidence controllers over the same randomized scenarios and
/// averages their accuracy and power.
///
/// All `thresholds × scenarios × 3` simulations are expanded into one job list and
/// executed in parallel on the [`FleetScheduler`]; every simulation seeds its own
/// randomness from the scenario, so the numbers are identical to a serial sweep.
///
/// # Errors
///
/// Returns [`AdaSenseError::InvalidSpec`] if no thresholds or scenarios are
/// requested, and propagates simulation errors.
pub fn stability_sweep(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
    settings: &StabilitySweepSettings,
) -> Result<StabilitySweepReport, AdaSenseError> {
    if settings.thresholds.is_empty() {
        return Err(AdaSenseError::invalid_spec("the threshold list must not be empty"));
    }
    if settings.scenarios_per_point == 0 {
        return Err(AdaSenseError::invalid_spec("scenarios_per_point must be non-zero"));
    }

    const CONTROLLERS_PER_POINT: usize = 3;
    let mut jobs = Vec::with_capacity(
        settings.thresholds.len() * settings.scenarios_per_point * CONTROLLERS_PER_POINT,
    );
    for &threshold in &settings.thresholds {
        for s in 0..settings.scenarios_per_point {
            let scenario = ScenarioSpec::random(
                settings.setting,
                settings.scenario_duration_s,
                settings.seed.wrapping_add(s as u64),
            );
            jobs.push((scenario.clone(), ControllerKind::StaticHigh));
            jobs.push((scenario.clone(), ControllerKind::Spot { stability_threshold: threshold }));
            jobs.push((
                scenario,
                ControllerKind::SpotWithConfidence {
                    stability_threshold: threshold,
                    confidence_threshold: settings.confidence_threshold,
                },
            ));
        }
    }
    let reports = FleetScheduler::new(spec, system).run_scenarios(&jobs)?;

    let mut points = Vec::with_capacity(settings.thresholds.len());
    for (t, &threshold) in settings.thresholds.iter().enumerate() {
        let mut accumulators = [(0.0f64, 0.0f64); CONTROLLERS_PER_POINT];
        for s in 0..settings.scenarios_per_point {
            let base = (t * settings.scenarios_per_point + s) * CONTROLLERS_PER_POINT;
            for (slot, accumulator) in accumulators.iter_mut().enumerate() {
                let report = &reports[base + slot];
                accumulator.0 += report.accuracy();
                accumulator.1 += report.average_current_ua();
            }
        }
        let n = settings.scenarios_per_point as f64;
        points.push(StabilitySweepPoint {
            threshold_s: threshold,
            baseline_accuracy: accumulators[0].0 / n,
            baseline_current_ua: accumulators[0].1 / n,
            spot_accuracy: accumulators[1].0 / n,
            spot_current_ua: accumulators[1].1 / n,
            spot_confidence_accuracy: accumulators[2].0 / n,
            spot_confidence_current_ua: accumulators[2].1 / n,
        });
    }
    Ok(StabilitySweepReport { settings: settings.clone(), points })
}

// ---------------------------------------------------------------------------
// Fig. 7 — comparison to the intensity-based approach
// ---------------------------------------------------------------------------

/// Parameters of the AdaSense vs intensity-based-approach comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IbaComparisonSettings {
    /// Duration of each simulated scenario, in seconds.
    pub scenario_duration_s: f64,
    /// Number of randomized scenarios averaged per activity setting.
    pub scenarios_per_setting: usize,
    /// The AdaSense controller to compare (the paper uses SPOT with confidence).
    pub adasense_controller: ControllerKind,
    /// Base seed for scenario generation.
    pub seed: u64,
}

impl IbaComparisonSettings {
    /// The paper-scale comparison.
    pub fn paper() -> Self {
        Self {
            scenario_duration_s: 600.0,
            scenarios_per_setting: 4,
            adasense_controller: ControllerKind::SpotWithConfidence {
                stability_threshold: 10,
                confidence_threshold: 0.85,
            },
            seed: 70,
        }
    }

    /// A reduced comparison for tests and doc examples.
    pub fn quick() -> Self {
        Self { scenario_duration_s: 90.0, scenarios_per_setting: 1, ..Self::paper() }
    }
}

impl Default for IbaComparisonSettings {
    fn default() -> Self {
        Self::paper()
    }
}

/// AdaSense and intensity-based results for one user activity setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IbaComparisonRow {
    /// The user activity setting (High / Medium / Low change rate).
    pub setting: ActivityChangeSetting,
    /// AdaSense average current, in µA.
    pub adasense_current_ua: f64,
    /// AdaSense recognition accuracy.
    pub adasense_accuracy: f64,
    /// Intensity-based approach average current, in µA.
    pub iba_current_ua: f64,
    /// Intensity-based approach recognition accuracy.
    pub iba_accuracy: f64,
}

/// The Fig. 7 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IbaComparisonReport {
    /// One row per activity setting, in High / Medium / Low order.
    pub rows: Vec<IbaComparisonRow>,
}

impl IbaComparisonReport {
    /// The row for a given setting, if present.
    pub fn row(&self, setting: ActivityChangeSetting) -> Option<&IbaComparisonRow> {
        self.rows.iter().find(|r| r.setting == setting)
    }

    /// Renders the Fig. 7 bars as a table.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "setting   adasense_uA  iba_uA  adasense_acc(%)  iba_acc(%)  power_saving_vs_iba(%)\n",
        );
        for r in &self.rows {
            let saving = if r.iba_current_ua > 0.0 {
                100.0 * (1.0 - r.adasense_current_ua / r.iba_current_ua)
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<9} {:>12.1} {:>7.1} {:>16.2} {:>11.2} {:>22.1}\n",
                r.setting.label(),
                r.adasense_current_ua,
                r.iba_current_ua,
                100.0 * r.adasense_accuracy,
                100.0 * r.iba_accuracy,
                saving
            ));
        }
        out
    }
}

/// Runs the Fig. 7 comparison between AdaSense and the intensity-based approach
/// under the High / Medium / Low user activity settings.
///
/// The `settings × scenarios × 2` simulations run in parallel on the
/// [`FleetScheduler`]; results are identical to a serial run.
///
/// # Errors
///
/// Returns [`AdaSenseError::InvalidSpec`] for degenerate settings and propagates
/// simulation errors.
pub fn iba_comparison(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
    settings: &IbaComparisonSettings,
) -> Result<IbaComparisonReport, AdaSenseError> {
    if settings.scenarios_per_setting == 0 {
        return Err(AdaSenseError::invalid_spec("scenarios_per_setting must be non-zero"));
    }

    let mut jobs =
        Vec::with_capacity(ActivityChangeSetting::ALL.len() * settings.scenarios_per_setting * 2);
    for setting in ActivityChangeSetting::ALL {
        for s in 0..settings.scenarios_per_setting {
            let scenario = ScenarioSpec::random(
                setting,
                settings.scenario_duration_s,
                settings.seed.wrapping_add(1000 * s as u64),
            );
            jobs.push((scenario.clone(), settings.adasense_controller));
            jobs.push((scenario, ControllerKind::IntensityBased));
        }
    }
    let reports = FleetScheduler::new(spec, system).run_scenarios(&jobs)?;

    let mut rows = Vec::with_capacity(ActivityChangeSetting::ALL.len());
    for (i, setting) in ActivityChangeSetting::ALL.into_iter().enumerate() {
        let mut adasense = (0.0f64, 0.0f64);
        let mut iba = (0.0f64, 0.0f64);
        for s in 0..settings.scenarios_per_setting {
            let base = (i * settings.scenarios_per_setting + s) * 2;
            let adasense_report = &reports[base];
            let iba_report = &reports[base + 1];
            adasense.0 += adasense_report.average_current_ua();
            adasense.1 += adasense_report.accuracy();
            iba.0 += iba_report.average_current_ua();
            iba.1 += iba_report.accuracy();
        }
        let n = settings.scenarios_per_setting as f64;
        rows.push(IbaComparisonRow {
            setting,
            adasense_current_ua: adasense.0 / n,
            adasense_accuracy: adasense.1 / n,
            iba_current_ua: iba.0 / n,
            iba_accuracy: iba.1 / n,
        });
    }
    Ok(IbaComparisonReport { rows })
}

// ---------------------------------------------------------------------------
// Section V-D — classifier memory comparison
// ---------------------------------------------------------------------------

/// The classifier weight-memory comparison of Section V-D.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Footprint of AdaSense's single unified classifier.
    pub adasense: MemoryFootprint,
    /// Footprint of a per-configuration bank covering the SPOT states
    /// (what retraining per configuration would cost for AdaSense's four states).
    pub per_config_bank: MemoryFootprint,
    /// Footprint of the intensity-based approach's bank (one classifier per
    /// configuration it uses, i.e. two).
    pub iba_bank: MemoryFootprint,
}

impl MemoryReport {
    /// Memory saving factor of AdaSense vs the four-state per-configuration bank.
    pub fn saving_vs_per_config_bank(&self) -> f64 {
        self.adasense.savings_factor_vs(&self.per_config_bank)
    }

    /// Memory saving factor of AdaSense vs the intensity-based approach (the
    /// paper quotes 2×).
    pub fn saving_vs_iba(&self) -> f64 {
        self.adasense.savings_factor_vs(&self.iba_bank)
    }

    /// Renders the comparison as a table.
    pub fn to_table_string(&self) -> String {
        format!(
            "strategy                      models  parameters  bytes    KiB\n\
             adasense (unified)            {:>6} {:>11} {:>8} {:>6.2}\n\
             per-configuration bank (x4)   {:>6} {:>11} {:>8} {:>6.2}\n\
             intensity-based bank (x2)     {:>6} {:>11} {:>8} {:>6.2}\n\
             saving vs per-config bank: {:.1}x, saving vs intensity-based: {:.1}x\n",
            self.adasense.models,
            self.adasense.parameters_per_model,
            self.adasense.total_bytes(),
            self.adasense.total_kib(),
            self.per_config_bank.models,
            self.per_config_bank.parameters_per_model,
            self.per_config_bank.total_bytes(),
            self.per_config_bank.total_kib(),
            self.iba_bank.models,
            self.iba_bank.parameters_per_model,
            self.iba_bank.total_bytes(),
            self.iba_bank.total_kib(),
            self.saving_vs_per_config_bank(),
            self.saving_vs_iba()
        )
    }
}

/// Builds the Section V-D memory comparison for the given classifier architecture,
/// assuming `f32` weight storage.
pub fn memory_report(
    architecture: &MlpConfig,
    spot_states: usize,
    iba_configs: usize,
) -> MemoryReport {
    const BYTES_PER_PARAMETER: usize = 4;
    MemoryReport {
        adasense: MemoryFootprint::single(architecture, BYTES_PER_PARAMETER),
        per_config_bank: MemoryFootprint::bank(architecture, spot_states, BYTES_PER_PARAMETER),
        iba_bank: MemoryFootprint::bank(architecture, iba_configs, BYTES_PER_PARAMETER),
    }
}

/// Builds the memory comparison with the paper's counts: four SPOT states and two
/// intensity-based configurations.
pub fn paper_memory_report(architecture: &MlpConfig) -> MemoryReport {
    memory_report(architecture, SensorConfig::paper_pareto_front().len(), 2)
}

// ---------------------------------------------------------------------------
// Ablation — single unified classifier vs per-configuration classifiers
// ---------------------------------------------------------------------------

/// One configuration's accuracy under the unified classifier and under a classifier
/// dedicated to that configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnifiedVsBankRow {
    /// The sensor configuration.
    pub config: SensorConfig,
    /// Held-out accuracy of the single classifier trained on pooled data from all
    /// configurations (AdaSense's approach).
    pub unified_accuracy: f64,
    /// Held-out accuracy of a classifier trained only on this configuration's data
    /// (the retrain-per-configuration approach of the related work).
    pub dedicated_accuracy: f64,
}

/// The unified-vs-dedicated classifier ablation (the claim behind Section III-C:
/// one network trained on heterogeneous data performs comparably while using a
/// fraction of the memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedVsBankReport {
    /// One row per evaluated configuration.
    pub rows: Vec<UnifiedVsBankRow>,
    /// Memory comparison for the two strategies.
    pub memory: MemoryReport,
}

impl UnifiedVsBankReport {
    /// Largest accuracy advantage of the dedicated classifiers over the unified one
    /// across all configurations (how much accuracy the memory saving costs).
    pub fn max_dedicated_advantage(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.dedicated_accuracy - r.unified_accuracy)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Renders the ablation as a table.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "configuration     unified_acc(%)  dedicated_acc(%)  dedicated_gain(pts)\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<17} {:>14.2} {:>17.2} {:>20.2}\n",
                r.config.label(),
                100.0 * r.unified_accuracy,
                100.0 * r.dedicated_accuracy,
                100.0 * (r.dedicated_accuracy - r.unified_accuracy)
            ));
        }
        out.push_str(&format!(
            "memory: unified {:.2} KiB vs one-per-configuration {:.2} KiB ({:.1}x)\n",
            self.memory.adasense.total_kib(),
            self.memory.per_config_bank.total_kib(),
            self.memory.saving_vs_per_config_bank()
        ));
        out
    }
}

/// Runs the unified-vs-dedicated classifier ablation over the configurations the
/// system was trained for.
///
/// # Errors
///
/// Propagates training errors from the dedicated per-configuration trainings.
pub fn unified_vs_bank(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
) -> Result<UnifiedVsBankReport, AdaSenseError> {
    let mut rows = Vec::with_capacity(system.per_config_accuracy().len());
    for (i, &(config, unified_accuracy)) in system.per_config_accuracy().iter().enumerate() {
        let dedicated = crate::training::train_for_config(spec, config, 5000 + i as u64)?;
        rows.push(UnifiedVsBankRow {
            config,
            unified_accuracy,
            dedicated_accuracy: dedicated.test_accuracy,
        });
    }
    let memory = memory_report(&spec.architecture, rows.len().max(1), 2);
    Ok(UnifiedVsBankReport { rows, memory })
}

// ---------------------------------------------------------------------------
// Convenience: per-epoch activity accuracy helper used by a couple of reports
// ---------------------------------------------------------------------------

/// Per-activity recall over a simulation run (useful to see which activities suffer
/// at low-power configurations).
pub fn per_activity_recall(report: &SimulationReport) -> Vec<(Activity, f64)> {
    Activity::ALL
        .iter()
        .map(|&activity| {
            let relevant: Vec<_> =
                report.records().iter().filter(|r| r.actual == activity).collect();
            let recall = if relevant.is_empty() {
                0.0
            } else {
                relevant.iter().filter(|r| r.correct).count() as f64 / relevant.len() as f64
            };
            (activity, recall)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::DatasetSpec;
    use adasense_ml::TrainerConfig;
    use std::sync::OnceLock;

    fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
        static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
        SYSTEM.get_or_init(|| {
            let spec = ExperimentSpec {
                dataset: DatasetSpec { windows_per_class_per_config: 10, ..DatasetSpec::quick() },
                trainer: TrainerConfig { epochs: 25, ..TrainerConfig::default() },
                ..ExperimentSpec::quick()
            };
            let system = TrainedSystem::train(&spec).expect("training succeeds");
            (spec, system)
        })
    }

    #[test]
    fn config_table_covers_all_sixteen_configurations() {
        let report = config_table(&EnergyModel::bmi160(), &NoiseModel::bmi160());
        assert_eq!(report.rows.len(), 16);
        let text = report.to_table_string();
        assert!(text.contains("F100_A128"));
        assert!(text.contains("F6.25_A8"));
    }

    #[test]
    fn behavioural_trace_settles_and_resettles() {
        let (spec, system) = shared_system();
        let report = behavioural_trace(spec, system, 3, 30.0, 30.0).expect("trace runs");
        assert!(report.first_settle_s.is_some(), "SPOT should reach the lowest state");
        assert_eq!(report.change_time_s, 30.0);
        assert!(!report.to_table_string().is_empty());
    }

    #[test]
    fn stability_sweep_produces_one_point_per_threshold() {
        let (spec, system) = shared_system();
        let settings = StabilitySweepSettings {
            thresholds: vec![2, 6],
            scenario_duration_s: 40.0,
            scenarios_per_point: 1,
            ..StabilitySweepSettings::quick()
        };
        let report = stability_sweep(spec, system, &settings).expect("sweep runs");
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.baseline_current_ua > p.spot_current_ua);
            assert!(p.baseline_current_ua > p.spot_confidence_current_ua);
        }
        assert!(report.average_spot_reduction() > 0.0);
        assert!(!report.to_table_string().is_empty());
    }

    #[test]
    fn stability_sweep_rejects_degenerate_settings() {
        let (spec, system) = shared_system();
        let mut settings = StabilitySweepSettings::quick();
        settings.thresholds.clear();
        assert!(stability_sweep(spec, system, &settings).is_err());
        let mut settings = StabilitySweepSettings::quick();
        settings.scenarios_per_point = 0;
        assert!(stability_sweep(spec, system, &settings).is_err());
    }

    #[test]
    fn iba_comparison_covers_all_three_settings() {
        let (spec, system) = shared_system();
        let report =
            iba_comparison(spec, system, &IbaComparisonSettings::quick()).expect("comparison runs");
        assert_eq!(report.rows.len(), 3);
        for setting in ActivityChangeSetting::ALL {
            assert!(report.row(setting).is_some());
        }
        assert!(!report.to_table_string().is_empty());
    }

    #[test]
    fn memory_report_matches_the_paper_ratios() {
        let report = paper_memory_report(&MlpConfig::paper());
        assert!((report.saving_vs_per_config_bank() - 4.0).abs() < 1e-9);
        assert!((report.saving_vs_iba() - 2.0).abs() < 1e-9);
        assert!(report.adasense.total_kib() < 4.0);
        assert!(!report.to_table_string().is_empty());
    }

    #[test]
    fn unified_vs_bank_ablation_covers_every_trained_configuration() {
        let (spec, system) = shared_system();
        let report = unified_vs_bank(spec, system).expect("ablation runs");
        assert_eq!(report.rows.len(), system.per_config_accuracy().len());
        for row in &report.rows {
            assert!((0.0..=1.0).contains(&row.unified_accuracy));
            assert!((0.0..=1.0).contains(&row.dedicated_accuracy));
        }
        // The memory trade-off side of the claim is deterministic.
        assert!(report.memory.saving_vs_per_config_bank() > 1.0);
        assert!(!report.to_table_string().is_empty());
        assert!(report.max_dedicated_advantage().is_finite());
    }

    #[test]
    fn per_activity_recall_covers_the_scenario_activities() {
        let (spec, system) = shared_system();
        let simulation = Simulator::new(spec, system)
            .with_controller(ControllerKind::Spot { stability_threshold: 3 })
            .run(ScenarioSpec::sit_then_walk(10.0, 10.0))
            .unwrap();
        let recall = per_activity_recall(&simulation);
        assert_eq!(recall.len(), Activity::COUNT);
        // Activities absent from the scenario report zero recall.
        let upstairs = recall.iter().find(|(a, _)| *a == Activity::Upstairs).unwrap();
        assert_eq!(upstairs.1, 0.0);
    }
}
