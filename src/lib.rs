//! # adasense-repro
//!
//! Workspace facade for the reproduction of *AdaSense: Adaptive Low-Power Sensing and
//! Activity Recognition for Wearable Devices* (Neseem, Nelson, Reda — DAC 2020).
//!
//! This crate simply re-exports the member crates so that the repository-level
//! examples and integration tests can use a single dependency:
//!
//! * [`sensor`] — simulated BMI160-style accelerometer, sensor configurations and
//!   the duty-cycle energy model.
//! * [`data`] — synthetic activity signal models, activity schedules and labelled
//!   window datasets.
//! * [`dsp`] — buffering, statistics, Goertzel/FFT and the unified 15-dimensional
//!   feature extraction.
//! * [`ml`] — the from-scratch dense neural network, trainer and metrics.
//! * [`adasense`] — the AdaSense framework itself: HAR pipeline, SPOT controllers,
//!   design-space exploration and the closed-loop power/accuracy simulator.
//!
//! # Example
//!
//! ```
//! use adasense_repro::adasense::prelude::*;
//!
//! # fn main() -> Result<(), AdaSenseError> {
//! let spec = ExperimentSpec::quick();
//! let trained = TrainedSystem::train(&spec)?;
//! let report = Simulator::new(&spec, &trained)
//!     .with_controller(ControllerKind::Spot { stability_threshold: 5 })
//!     .run(ScenarioSpec::sit_then_walk(30.0, 30.0))?;
//! assert!(report.average_current_ua() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use adasense;
pub use adasense_data as data;
pub use adasense_dsp as dsp;
pub use adasense_ml as ml;
pub use adasense_sensor as sensor;
