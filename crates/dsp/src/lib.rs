//! # adasense-dsp
//!
//! Signal-processing substrate for the AdaSense (DAC 2020) reproduction.
//!
//! The paper's HAR framework (Fig. 1) buffers two seconds of accelerometer data,
//! pushes a batch through feature extraction every second (one second of overlap),
//! and feeds a fixed-size feature vector to the classifier.  The crucial property is
//! that the feature vector has the *same size regardless of the sensor
//! configuration*, which is what lets a single classifier serve every configuration.
//!
//! Modules:
//!
//! * [`stats`] — per-axis statistics (mean, standard deviation, RMS, …).
//! * [`fft`] — spectral analysis: a radix-2 FFT, a direct DFT for arbitrary lengths
//!   and a Goertzel evaluator for individual low-frequency bins.
//! * [`window`] — the 2-second / 1-second-hop batch buffer of Fig. 1.
//! * [`features`] — the unified 15-dimensional feature vector (3 means, 3 standard
//!   deviations, 3 × 3 low-frequency Fourier magnitudes) and its extractor.
//! * [`resample`] — linear-interpolation resampling (used by the related-work
//!   baseline that normalizes variable sampling rates).
//! * [`intensity`] — activity-intensity estimate (mean absolute first derivative),
//!   used by the intensity-based baseline of NK et al. \[8\].
//!
//! # Example
//!
//! ```
//! use adasense_dsp::prelude::*;
//! use adasense_sensor::Sample3;
//!
//! // A 2-second batch of 50 Hz samples of a 2 Hz vertical oscillation.
//! let samples: Vec<Sample3> = (0..100)
//!     .map(|k| {
//!         let t = k as f64 / 50.0;
//!         Sample3::new(t, 0.0, 0.0, 1.0 + 0.3 * (std::f64::consts::TAU * 2.0 * t).sin())
//!     })
//!     .collect();
//! let extractor = FeatureExtractor::paper();
//! let features = extractor.extract(&samples, 50.0);
//! assert_eq!(features.len(), 15);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dwt;
pub mod features;
pub mod fft;
pub mod intensity;
pub mod projection;
pub mod resample;
pub mod stats;
pub mod window;

pub use dwt::{haar_band_energies, haar_decompose, haar_level, HaarWorkspace};
pub use features::{FeatureExtractor, FeatureVector, FEATURE_DIM, TIME_DOMAIN_DIM};
pub use fft::{
    dft_magnitudes, fft_radix2, goertzel_magnitude, goertzel_magnitude_of, Complex, FftPlan,
};
pub use intensity::{mean_absolute_derivative, IntensityEstimator};
pub use projection::{ProjectionScratch, SparseProjection};
pub use resample::resample_linear;
pub use stats::AxisStats;
pub use window::BatchBuffer;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dwt::{haar_band_energies, haar_decompose, haar_level, HaarWorkspace};
    pub use crate::features::{FeatureExtractor, FeatureVector, FEATURE_DIM, TIME_DOMAIN_DIM};
    pub use crate::fft::{
        dft_magnitudes, fft_radix2, goertzel_magnitude, goertzel_magnitude_of, Complex, FftPlan,
    };
    pub use crate::intensity::{mean_absolute_derivative, IntensityEstimator};
    pub use crate::projection::{ProjectionScratch, SparseProjection};
    pub use crate::resample::resample_linear;
    pub use crate::stats::AxisStats;
    pub use crate::window::BatchBuffer;
}
