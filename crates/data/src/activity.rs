//! The six daily-activity classes recognized by the AdaSense HAR framework.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the six daily activities classified by the paper's HAR framework
/// (Section III): *sit, stand, walk, go upstairs, go downstairs, lie down*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Sitting still.
    Sit,
    /// Standing still.
    Stand,
    /// Walking on level ground.
    Walk,
    /// Walking up stairs.
    Upstairs,
    /// Walking down stairs.
    Downstairs,
    /// Lying down.
    LieDown,
}

impl Activity {
    /// All six activities, in a fixed order that doubles as the classifier's class
    /// index order.
    pub const ALL: [Activity; 6] = [
        Activity::Sit,
        Activity::Stand,
        Activity::Walk,
        Activity::Upstairs,
        Activity::Downstairs,
        Activity::LieDown,
    ];

    /// Number of activity classes.
    pub const COUNT: usize = 6;

    /// The classifier output index of this activity.
    ///
    /// ```
    /// use adasense_data::Activity;
    /// assert_eq!(Activity::Walk.index(), 2);
    /// assert_eq!(Activity::from_index(2), Some(Activity::Walk));
    /// ```
    pub fn index(self) -> usize {
        match self {
            Activity::Sit => 0,
            Activity::Stand => 1,
            Activity::Walk => 2,
            Activity::Upstairs => 3,
            Activity::Downstairs => 4,
            Activity::LieDown => 5,
        }
    }

    /// The activity corresponding to a classifier output index, if any.
    pub fn from_index(index: usize) -> Option<Activity> {
        Activity::ALL.get(index).copied()
    }

    /// Whether the paper's intensity-based baseline (NK et al. \[8\]) considers this a
    /// low-intensity activity (stand, sit, lie down) as opposed to a locomotion
    /// activity (walk, upstairs, downstairs).
    pub fn is_low_intensity(self) -> bool {
        matches!(self, Activity::Sit | Activity::Stand | Activity::LieDown)
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Activity::Sit => "sit",
            Activity::Stand => "stand",
            Activity::Walk => "walk",
            Activity::Upstairs => "upstairs",
            Activity::Downstairs => "downstairs",
            Activity::LieDown => "lie down",
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_six_activities() {
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
    }

    #[test]
    fn indices_are_dense_and_round_trip() {
        for (i, activity) in Activity::ALL.iter().enumerate() {
            assert_eq!(activity.index(), i);
            assert_eq!(Activity::from_index(i), Some(*activity));
        }
        assert_eq!(Activity::from_index(6), None);
    }

    #[test]
    fn intensity_split_matches_the_paper() {
        // Section V-D: low-intensity = stand, sit, lie down; intense = walk, stairs.
        assert!(Activity::Sit.is_low_intensity());
        assert!(Activity::Stand.is_low_intensity());
        assert!(Activity::LieDown.is_low_intensity());
        assert!(!Activity::Walk.is_low_intensity());
        assert!(!Activity::Upstairs.is_low_intensity());
        assert!(!Activity::Downstairs.is_low_intensity());
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = Activity::ALL.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
