//! End-to-end integration tests spanning every crate: synthetic data → simulated
//! sensor → feature extraction → classifier → adaptive controller → energy
//! accounting.

use adasense_repro::adasense::prelude::*;
use std::sync::OnceLock;

/// One shared small trained system for the whole integration suite (training takes a
/// couple of seconds in debug builds, so do it once).
fn shared() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 14, ..DatasetSpec::quick() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training the quick system succeeds");
        (spec, system)
    })
}

#[test]
fn unified_classifier_reaches_usable_accuracy_on_all_pareto_configs() {
    let (_, system) = shared();
    assert!(
        system.unified_test_accuracy() > 0.75,
        "pooled accuracy {} too low",
        system.unified_test_accuracy()
    );
    for (config, accuracy) in system.per_config_accuracy() {
        assert!(
            *accuracy > 0.55,
            "accuracy {accuracy} at {config} too low even for the quick dataset"
        );
    }
}

#[test]
fn accuracy_degrades_monotonically_ish_from_best_to_worst_configuration() {
    // The high-power configuration should classify at least as well as the
    // lowest-power one; that ordering is the entire premise of the Fig. 2 trade-off.
    let (_, system) = shared();
    let accuracies: Vec<(SensorConfig, f64)> = system.per_config_accuracy().to_vec();
    let high =
        accuracies.iter().find(|(c, _)| c.label() == "F100_A128").expect("high config evaluated").1;
    let low =
        accuracies.iter().find(|(c, _)| c.label() == "F12.5_A8").expect("low config evaluated").1;
    assert!(
        high + 1e-9 >= low,
        "expected F100_A128 ({high}) to be at least as accurate as F12.5_A8 ({low})"
    );
}

#[test]
fn spot_saves_power_and_stays_close_to_baseline_accuracy_on_stable_scenarios() {
    let (spec, system) = shared();
    let scenario = ScenarioSpec::random(ActivityChangeSetting::Low, 240.0, 11);
    let baseline = Simulator::new(spec, system)
        .with_controller(ControllerKind::StaticHigh)
        .run(scenario.clone())
        .unwrap();
    let spot = Simulator::new(spec, system)
        .with_controller(ControllerKind::Spot { stability_threshold: 10 })
        .run(scenario)
        .unwrap();
    let reduction = spot.power_reduction_vs(baseline.average_current_ua());
    assert!(
        reduction > 0.3,
        "SPOT should cut a large fraction of the sensor power on a stable day, got {reduction}"
    );
    assert!(
        baseline.accuracy() - spot.accuracy() < 0.15,
        "SPOT accuracy should stay in the neighbourhood of the baseline ({} vs {})",
        spot.accuracy(),
        baseline.accuracy()
    );
}

#[test]
fn spot_with_confidence_consumes_no_more_than_plain_spot_on_average() {
    // The confidence gate exists to suppress spurious resets, so across a few
    // scenarios it should not consume more power than plain SPOT.
    let (spec, system) = shared();
    let mut spot_total = 0.0;
    let mut confidence_total = 0.0;
    for seed in 0..3u64 {
        let scenario = ScenarioSpec::random(ActivityChangeSetting::Medium, 180.0, 20 + seed);
        let spot = Simulator::new(spec, system)
            .with_controller(ControllerKind::Spot { stability_threshold: 8 })
            .run(scenario.clone())
            .unwrap();
        let confidence = Simulator::new(spec, system)
            .with_controller(ControllerKind::SpotWithConfidence {
                stability_threshold: 8,
                confidence_threshold: 0.85,
            })
            .run(scenario)
            .unwrap();
        spot_total += spot.average_current_ua();
        confidence_total += confidence.average_current_ua();
    }
    assert!(
        confidence_total <= spot_total * 1.05,
        "SPOT+confidence ({confidence_total}) should not be meaningfully above SPOT ({spot_total})"
    );
}

#[test]
fn unstable_activity_keeps_spot_near_the_high_power_configuration() {
    let (spec, system) = shared();
    let fast = ScenarioSpec::random(ActivityChangeSetting::High, 120.0, 33);
    let report = Simulator::new(spec, system)
        .with_controller(ControllerKind::Spot { stability_threshold: 20 })
        .run(fast)
        .unwrap();
    // With a 20 s threshold and ~10 s dwell times, the controller should hardly
    // ever leave the first state.
    assert!(
        report.residency(SensorConfig::paper_pareto_front()[0]) > 0.8,
        "expected mostly high-power residency, got {:?}",
        report.seconds_in_config
    );
}

#[test]
fn energy_accounting_matches_residency_weighted_currents() {
    let (spec, system) = shared();
    let report = Simulator::new(spec, system)
        .with_controller(ControllerKind::Spot { stability_threshold: 5 })
        .run(ScenarioSpec::sit_then_walk(40.0, 20.0))
        .unwrap();
    let energy = spec.dataset.energy_model;
    let mut expected = 0.0;
    for (label, seconds) in &report.seconds_in_config {
        let config: SensorConfig = label.parse().expect("labels round-trip");
        expected += energy.current_ua(config) * seconds;
    }
    let measured = report.total_charge.micro_coulombs();
    assert!(
        (expected - measured).abs() < 1e-6 * expected.max(1.0),
        "charge accounting mismatch: {measured} vs {expected}"
    );
}

#[test]
fn feature_vectors_have_the_same_size_under_every_table_i_configuration() {
    // The unified feature extraction claim of Section III-B, checked end-to-end
    // through the simulated sensor.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let extractor = FeatureExtractor::paper();
    let signal = ActivitySignalModel::canonical(Activity::Walk).realize(&SubjectParams::neutral());
    let mut rng = StdRng::seed_from_u64(3);
    for config in SensorConfig::table_i() {
        let accel = Accelerometer::new(config);
        let window = accel.capture(&signal, 0.0, 2.0, &mut rng);
        let features = extractor.extract(&window, config.frequency.hz());
        assert_eq!(features.len(), FEATURE_DIM, "under {config}");
        assert!(features.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn the_same_unified_model_classifies_batches_from_all_configurations() {
    let (_, system) = shared();
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let pipeline = system.pipeline();
    let mut rng = StdRng::seed_from_u64(9);
    for config in SensorConfig::paper_pareto_front() {
        let signal =
            ActivitySignalModel::canonical(Activity::LieDown).realize(&SubjectParams::neutral());
        let accel = Accelerometer::new(config);
        let window = accel.capture(&signal, 0.0, 2.0, &mut rng);
        let classified = pipeline.classify_batch(&window, config).expect("non-empty window");
        // Lie-down has a very distinctive orientation; any sane model should get it
        // right under every configuration.
        assert_eq!(classified.activity, Activity::LieDown, "under {config}");
    }
}
