//! Duty-cycle current model of the simulated accelerometer.
//!
//! The paper's key observation is that in low-power mode the averaging window — not
//! just the sampling frequency — determines how long the sensor must stay awake per
//! output sample, and therefore its average current.  This module captures that with
//! a small analytical model:
//!
//! * The sensor's internal sampling clock runs at `internal_rate_hz` (1600 Hz for the
//!   BMI160's under-sampling averaging).
//! * Producing one output sample requires the core to be active for
//!   `averaging_window / internal_rate_hz` seconds.
//! * The duty cycle is therefore `odr × averaging_window / internal_rate_hz`.
//! * If the duty cycle reaches 1 the sensor cannot sleep at all and must run in
//!   normal mode, where the averaging window no longer affects current.
//!
//! Average current is interpolated between the suspend and active currents by the
//! duty cycle, plus a small per-sample wake-up overhead and a small rate-dependent
//! digital overhead.  The defaults are calibrated so that the 16 configurations of
//! Table I land in the 10–200 µA range shown in Fig. 2 of the paper.

use serde::{Deserialize, Serialize};

use crate::config::{OperationMode, SensorConfig};

/// An amount of electric charge, in microcoulombs.
///
/// Multiplying an average current (µA) by a duration (s) yields charge (µC); dividing
/// accumulated charge by elapsed time recovers the average current.  Keeping the
/// accumulator in charge units makes energy accounting across state switches exact.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Charge {
    micro_coulombs: f64,
}

impl Charge {
    /// Zero charge.
    pub const ZERO: Charge = Charge { micro_coulombs: 0.0 };

    /// Creates a charge from a value in microcoulombs.
    pub fn from_micro_coulombs(micro_coulombs: f64) -> Self {
        Self { micro_coulombs }
    }

    /// Charge accumulated by drawing `current_ua` microamps for `seconds` seconds.
    ///
    /// ```
    /// use adasense_sensor::Charge;
    /// let c = Charge::from_current(100.0, 2.0);
    /// assert_eq!(c.micro_coulombs(), 200.0);
    /// ```
    pub fn from_current(current_ua: f64, seconds: f64) -> Self {
        Self { micro_coulombs: current_ua * seconds }
    }

    /// The charge in microcoulombs.
    pub fn micro_coulombs(self) -> f64 {
        self.micro_coulombs
    }

    /// Average current in microamps over `seconds` seconds.
    ///
    /// Returns 0 for non-positive durations.
    pub fn average_current_ua(self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.micro_coulombs / seconds
        }
    }
}

impl std::ops::Add for Charge {
    type Output = Charge;
    fn add(self, rhs: Charge) -> Charge {
        Charge { micro_coulombs: self.micro_coulombs + rhs.micro_coulombs }
    }
}

impl std::ops::AddAssign for Charge {
    fn add_assign(&mut self, rhs: Charge) {
        self.micro_coulombs += rhs.micro_coulombs;
    }
}

impl std::iter::Sum for Charge {
    fn sum<I: Iterator<Item = Charge>>(iter: I) -> Charge {
        iter.fold(Charge::ZERO, |acc, c| acc + c)
    }
}

/// Parameters of the duty-cycle current model.
///
/// Construct with [`EnergyModel::bmi160`] (the calibrated default) or adjust the
/// public fields for what-if analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Current drawn while the sensor core is active, in µA.
    pub active_current_ua: f64,
    /// Current drawn while the sensor core is suspended, in µA.
    pub suspend_current_ua: f64,
    /// Internal sampling clock used for under-sampling averaging, in Hz.
    pub internal_rate_hz: f64,
    /// Charge spent waking the core up for each output sample in low-power mode, in µC.
    pub wakeup_charge_uc: f64,
    /// Extra digital/interface current per Hz of output data rate, in µA/Hz.
    pub digital_overhead_ua_per_hz: f64,
}

impl EnergyModel {
    /// A model calibrated to BMI160-datasheet-scale numbers.
    ///
    /// With these values the Table I configurations span roughly 10–190 µA, matching
    /// the x-axis range of Fig. 2 in the paper, and the four paper Pareto states get
    /// distinct, strictly decreasing currents.
    pub fn bmi160() -> Self {
        Self {
            active_current_ua: 180.0,
            suspend_current_ua: 3.0,
            internal_rate_hz: 1600.0,
            wakeup_charge_uc: 0.09,
            digital_overhead_ua_per_hz: 0.1,
        }
    }

    /// Fraction of time the sensor core must be active for the given configuration.
    ///
    /// Saturates at 1.0; a saturated duty cycle means the configuration can only run
    /// in normal mode.
    pub fn duty_cycle(&self, config: SensorConfig) -> f64 {
        let active_time_per_sample = f64::from(config.averaging.samples()) / self.internal_rate_hz;
        (config.frequency.hz() * active_time_per_sample).min(1.0)
    }

    /// The operation mode the sensor must use for the given configuration.
    ///
    /// ```
    /// use adasense_sensor::{AveragingWindow, EnergyModel, OperationMode, SamplingFrequency, SensorConfig};
    /// let m = EnergyModel::bmi160();
    /// let hi = SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128);
    /// let lo = SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8);
    /// assert_eq!(m.operation_mode(hi), OperationMode::Normal);
    /// assert_eq!(m.operation_mode(lo), OperationMode::LowPower);
    /// ```
    pub fn operation_mode(&self, config: SensorConfig) -> OperationMode {
        if self.duty_cycle(config) >= 1.0 {
            OperationMode::Normal
        } else {
            OperationMode::LowPower
        }
    }

    /// Average current of the sensor under the given configuration, in µA.
    pub fn current_ua(&self, config: SensorConfig) -> f64 {
        let digital = self.digital_overhead_ua_per_hz * config.frequency.hz();
        match self.operation_mode(config) {
            OperationMode::Normal => self.active_current_ua + digital,
            OperationMode::LowPower => {
                let duty = self.duty_cycle(config);
                let base = self.suspend_current_ua
                    + duty * (self.active_current_ua - self.suspend_current_ua);
                let wakeups = self.wakeup_charge_uc * config.frequency.hz();
                base + wakeups + digital
            }
        }
    }

    /// Charge consumed by running the sensor in `config` for `seconds` seconds.
    pub fn charge_over(&self, config: SensorConfig, seconds: f64) -> Charge {
        Charge::from_current(self.current_ua(config), seconds)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::bmi160()
    }
}

// ---------------------------------------------------------------------------
// Radio transmission
// ---------------------------------------------------------------------------

/// Nominal supply voltage used to convert charge (µC) to energy (µJ):
/// `energy_uj = charge_uc × SUPPLY_VOLTS`.  All charge accounting stays in µC;
/// this constant exists so reports can also quote µJ, the unit the
/// compressed-sensing literature uses.
pub const SUPPLY_VOLTS: f64 = 3.0;

/// What a device transmits off-node each epoch.
///
/// The transmission-aware energy model trades radio bytes against on-device
/// compute: sending the raw window is the most faithful but by far the most
/// expensive; sending extracted features is two orders of magnitude cheaper;
/// a compressed-sensing projection sits in between, trading reconstruction
/// fidelity for a tunable byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxPolicy {
    /// Transmit the full raw sample window.
    Raw,
    /// Transmit the extracted feature vector (classify-on-device).
    Features,
    /// Transmit a seeded sparse random projection of the window; the host
    /// reconstructs before decoding.
    Compressed,
}

impl TxPolicy {
    /// Number of transmission policies.
    pub const COUNT: usize = 3;

    /// All policies, in tag order.
    pub const ALL: [TxPolicy; TxPolicy::COUNT] =
        [TxPolicy::Raw, TxPolicy::Features, TxPolicy::Compressed];

    /// Stable tag of this policy (wire format, report encodings, counters).
    pub fn index(self) -> usize {
        match self {
            TxPolicy::Raw => 0,
            TxPolicy::Features => 1,
            TxPolicy::Compressed => 2,
        }
    }

    /// The policy with the given tag, `None` when out of range.
    pub fn from_index(index: usize) -> Option<TxPolicy> {
        TxPolicy::ALL.get(index).copied()
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TxPolicy::Raw => "raw",
            TxPolicy::Features => "features",
            TxPolicy::Compressed => "compressed",
        }
    }
}

/// Per-byte + per-wakeup cost model of the radio link, in charge units.
///
/// Calibrated to the measurements quoted by the compressed-sensing telemetry
/// literature (Pagán et al.): transmitting one raw 3072 B window costs
/// 36864 µJ while the 144 B time-domain feature vector costs 1728 µJ — both
/// 12 µJ per byte, which at the nominal [`SUPPLY_VOLTS`] supply is 4.0 µC per
/// byte.  The per-wakeup term models radio startup/teardown per transmission
/// burst, so many small payloads do not come for free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Charge per transmitted payload byte, in µC.
    pub tx_charge_per_byte_uc: f64,
    /// Fixed charge per transmission burst (radio wakeup + sync), in µC.
    pub tx_wakeup_charge_uc: f64,
}

impl RadioModel {
    /// A BLE-class link calibrated to the Pagán et al. numbers: 12 µJ/byte
    /// (4.0 µC/byte at 3 V) plus a 15 µJ (5 µC) wakeup per burst.
    pub fn ble() -> Self {
        Self { tx_charge_per_byte_uc: 4.0, tx_wakeup_charge_uc: 5.0 }
    }

    /// Charge of one transmission burst carrying `bytes` payload bytes.
    ///
    /// ```
    /// use adasense_sensor::RadioModel;
    /// let radio = RadioModel::ble();
    /// // One raw-equivalent 3072 B burst: 3072 × 4 µC + 5 µC wakeup.
    /// let c = radio.tx_charge(3072);
    /// assert_eq!(c.micro_coulombs(), 3072.0 * 4.0 + 5.0);
    /// ```
    pub fn tx_charge(&self, bytes: usize) -> Charge {
        Charge::from_micro_coulombs(
            self.tx_wakeup_charge_uc + self.tx_charge_per_byte_uc * bytes as f64,
        )
    }
}

impl Default for RadioModel {
    fn default() -> Self {
        Self::ble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AveragingWindow, SamplingFrequency};

    fn cfg(f: SamplingFrequency, a: AveragingWindow) -> SensorConfig {
        SensorConfig::new(f, a)
    }

    #[test]
    fn a128_configurations_at_high_rates_run_in_normal_mode() {
        let m = EnergyModel::bmi160();
        for f in [SamplingFrequency::F100, SamplingFrequency::F50, SamplingFrequency::F25] {
            assert_eq!(m.operation_mode(cfg(f, AveragingWindow::A128)), OperationMode::Normal);
        }
    }

    #[test]
    fn small_windows_at_low_rates_run_in_low_power_mode() {
        let m = EnergyModel::bmi160();
        assert_eq!(
            m.operation_mode(cfg(SamplingFrequency::F12_5, AveragingWindow::A8)),
            OperationMode::LowPower
        );
        assert_eq!(
            m.operation_mode(cfg(SamplingFrequency::F6_25, AveragingWindow::A128)),
            OperationMode::LowPower
        );
    }

    #[test]
    fn normal_mode_current_ignores_averaging_window() {
        let m = EnergyModel::bmi160();
        let a = m.current_ua(cfg(SamplingFrequency::F100, AveragingWindow::A128));
        // In normal mode only the digital overhead (rate-dependent) matters, so two
        // normal-mode configs at the same rate draw the same current.
        let b = m.current_ua(cfg(SamplingFrequency::F100, AveragingWindow::A32));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn paper_pareto_states_have_strictly_decreasing_current() {
        let m = EnergyModel::bmi160();
        let currents: Vec<f64> =
            SensorConfig::paper_pareto_front().iter().map(|c| m.current_ua(*c)).collect();
        for pair in currents.windows(2) {
            assert!(pair[0] > pair[1], "expected strictly decreasing currents, got {currents:?}");
        }
    }

    #[test]
    fn currents_span_the_figure_2_range() {
        let m = EnergyModel::bmi160();
        let currents: Vec<f64> = SensorConfig::table_i().iter().map(|c| m.current_ua(*c)).collect();
        let min = currents.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = currents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 5.0 && min < 30.0, "min current {min} outside expected range");
        assert!(max > 150.0 && max < 250.0, "max current {max} outside expected range");
    }

    #[test]
    fn current_is_monotone_in_frequency_for_fixed_window() {
        let m = EnergyModel::bmi160();
        for &a in &AveragingWindow::ALL {
            let currents: Vec<f64> =
                SamplingFrequency::ALL.iter().map(|&f| m.current_ua(cfg(f, a))).collect();
            for pair in currents.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-9, "current must not decrease with rate");
            }
        }
    }

    #[test]
    fn current_is_monotone_in_window_for_fixed_frequency() {
        let m = EnergyModel::bmi160();
        for &f in &SamplingFrequency::ALL {
            let currents: Vec<f64> =
                AveragingWindow::ALL.iter().map(|&a| m.current_ua(cfg(f, a))).collect();
            for pair in currents.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-9, "current must not decrease with window");
            }
        }
    }

    #[test]
    fn charge_accumulates_linearly_with_time() {
        let m = EnergyModel::bmi160();
        let config = cfg(SamplingFrequency::F50, AveragingWindow::A16);
        let one = m.charge_over(config, 1.0);
        let ten = m.charge_over(config, 10.0);
        assert!((ten.micro_coulombs() - 10.0 * one.micro_coulombs()).abs() < 1e-9);
    }

    #[test]
    fn charge_recovers_average_current() {
        let c = Charge::from_current(42.0, 3.0);
        assert!((c.average_current_ua(3.0) - 42.0).abs() < 1e-12);
        assert_eq!(c.average_current_ua(0.0), 0.0);
    }

    #[test]
    fn charge_addition_and_sum() {
        let a = Charge::from_current(10.0, 1.0);
        let b = Charge::from_current(20.0, 1.0);
        assert_eq!((a + b).micro_coulombs(), 30.0);
        let total: Charge = vec![a, b, a].into_iter().sum();
        assert_eq!(total.micro_coulombs(), 40.0);
    }

    #[test]
    fn duty_cycle_saturates_at_one() {
        let m = EnergyModel::bmi160();
        assert_eq!(m.duty_cycle(cfg(SamplingFrequency::F100, AveragingWindow::A128)), 1.0);
        assert!(m.duty_cycle(cfg(SamplingFrequency::F6_25, AveragingWindow::A8)) < 0.05);
    }

    #[test]
    fn charge_over_a_mid_epoch_config_switch_is_the_split_sum() {
        // When the controller switches configuration partway through an
        // epoch, the total charge is the piecewise sum of `charge_over` the
        // two sub-intervals — and it must land strictly between running the
        // whole epoch in either configuration alone.
        let m = EnergyModel::bmi160();
        let hi = cfg(SamplingFrequency::F100, AveragingWindow::A128);
        let lo = cfg(SamplingFrequency::F12_5, AveragingWindow::A8);
        let epoch_s = 1.0;
        for split in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let switched = m.charge_over(hi, split) + m.charge_over(lo, epoch_s - split);
            let all_hi = m.charge_over(hi, epoch_s);
            let all_lo = m.charge_over(lo, epoch_s);
            assert!(
                switched.micro_coulombs() < all_hi.micro_coulombs(),
                "switching down at {split} must save charge ({switched:?} vs {all_hi:?})"
            );
            assert!(
                switched.micro_coulombs() > all_lo.micro_coulombs(),
                "the high-power prefix must still cost more than all-low ({switched:?} vs \
                 {all_lo:?})"
            );
            // The split sum equals the duty-cycle-weighted expectation.
            let expected = m.current_ua(hi) * split + m.current_ua(lo) * (epoch_s - split);
            assert!((switched.micro_coulombs() - expected).abs() < 1e-9);
        }
        // Degenerate splits collapse to the pure configurations.
        let at_zero = m.charge_over(hi, 0.0) + m.charge_over(lo, epoch_s);
        assert!(
            (at_zero.micro_coulombs() - m.charge_over(lo, epoch_s).micro_coulombs()).abs() < 1e-12
        );
    }

    #[test]
    fn tx_policy_tags_round_trip() {
        for policy in TxPolicy::ALL {
            assert_eq!(TxPolicy::from_index(policy.index()), Some(policy));
        }
        assert_eq!(TxPolicy::from_index(TxPolicy::COUNT), None);
        assert_eq!(TxPolicy::ALL.len(), TxPolicy::COUNT);
    }

    #[test]
    fn radio_model_matches_the_pagan_calibration() {
        // 3072 B raw window → 36864 µJ and 144 B feature vector → 1728 µJ,
        // both 12 µJ/byte at the 3 V supply (the wakeup term is the small
        // burst overhead on top).
        let radio = RadioModel::ble();
        let raw_uj = radio.tx_charge(3072).micro_coulombs() * SUPPLY_VOLTS;
        let features_uj = radio.tx_charge(144).micro_coulombs() * SUPPLY_VOLTS;
        let wakeup_uj = radio.tx_wakeup_charge_uc * SUPPLY_VOLTS;
        assert!((raw_uj - wakeup_uj - 36864.0).abs() < 1e-9);
        assert!((features_uj - wakeup_uj - 1728.0).abs() < 1e-9);
        // Per-byte cost dominates for any realistic payload, so halving the
        // bytes roughly halves the burst charge.
        let full = radio.tx_charge(1000).micro_coulombs();
        let half = radio.tx_charge(500).micro_coulombs();
        assert!(half < 0.6 * full);
    }
}
