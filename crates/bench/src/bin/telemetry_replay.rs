//! Telemetry record/replay gate: scenario → wire-format trace file → loopback
//! socket → fleet runtime, verified bit-identical to the direct run.
//!
//! The pipeline (see `docs/WIRE_FORMAT.md` and ARCHITECTURE.md):
//!
//! 1. Run a scenario-driven fleet through the scheduler (the reference).
//! 2. Re-run every device standalone under a `TraceRecorder` and write its
//!    stream as a wire-format `.trace` file.
//! 3. Serve each trace file over its own loopback TCP listener and replay the
//!    whole cohort through `SocketSource`s via `run_with_feeds`.
//! 4. Fail unless every replayed `DeviceSummary` row is bit-identical to the
//!    reference row.
//! 5. Additionally run a *mixed* fleet — the scenario cohort plus a
//!    channel-fed replay cohort in one `run_with_feeds` call — and verify
//!    both halves.
//!
//! Run with `cargo run --release -p adasense-bench --bin telemetry_replay`
//! (add `--quick` for the reduced training set; `--devices N`, `--duration S`,
//! `--routine <preset>`, `--fault <none|light|heavy>` and `--trace-dir PATH`
//! to change the workload).  Exits non-zero on any mismatch.

use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};

use adasense::ingest::{telemetry_channel, ReconnectPolicy, SocketSource, TraceRecorder};
use adasense::prelude::*;
use adasense::TelemetryTrace;
use adasense_bench::{int_arg, string_arg, train_system, RunScale};

fn trace_path(dir: &Path, device_id: u64) -> PathBuf {
    dir.join(format!("device_{device_id:04}.trace"))
}

/// Compares two summary rows field by field, returning the names of the
/// fields that differ.  `ignore_faults` masks `faulted_epochs`: fault
/// exposure is a capture-side property a replayed feed cannot observe.
fn row_mismatches(a: &DeviceSummary, b: &DeviceSummary, ignore_faults: bool) -> Vec<&'static str> {
    let mut bad = Vec::new();
    let mut check = |name, equal: bool| {
        if !equal {
            bad.push(name);
        }
    };
    check("device_id", a.device_id == b.device_id);
    check("seed", a.seed == b.seed);
    check("routine", a.routine == b.routine);
    check("backend", a.backend == b.backend);
    check("faulted_epochs", ignore_faults || a.faulted_epochs == b.faulted_epochs);
    check("epochs", a.epochs == b.epochs);
    check("correct_epochs", a.correct_epochs == b.correct_epochs);
    check("accuracy", a.accuracy.to_bits() == b.accuracy.to_bits());
    check("average_current_ua", a.average_current_ua.to_bits() == b.average_current_ua.to_bits());
    check("total_charge_uc", a.total_charge_uc.to_bits() == b.total_charge_uc.to_bits());
    check("duration_s", a.duration_s.to_bits() == b.duration_s.to_bits());
    check(
        "residency_s",
        a.residency_s.len() == b.residency_s.len()
            && a.residency_s.iter().zip(&b.residency_s).all(|(x, y)| x.to_bits() == y.to_bits()),
    );
    bad
}

fn compare_cohorts(
    what: &str,
    reference: &[DeviceSummary],
    replayed: &[DeviceSummary],
    ignore_faults: bool,
) -> Result<(), String> {
    if reference.len() != replayed.len() {
        return Err(format!(
            "{what}: row count mismatch ({} reference vs {} replayed)",
            reference.len(),
            replayed.len()
        ));
    }
    for (a, b) in reference.iter().zip(replayed) {
        let bad = row_mismatches(a, b, ignore_faults);
        if !bad.is_empty() {
            return Err(format!(
                "{what}: device {} differs in [{}]\n  reference: {a:?}\n  replayed:  {b:?}",
                a.device_id,
                bad.join(", ")
            ));
        }
    }
    println!("{what}: {} rows bit-identical", reference.len());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(6);
    let duration_s = int_arg("--duration")?.unwrap_or(60) as f64;
    let routine = string_arg("--routine")?.unwrap_or_else(|| "office_day".to_string());
    let fault = string_arg("--fault")?.unwrap_or_else(|| "none".to_string());
    let trace_dir = PathBuf::from(
        string_arg("--trace-dir")?.unwrap_or_else(|| "target/telemetry_replay".into()),
    );

    let preset =
        RoutinePreset::from_name(&routine).ok_or_else(|| format!("unknown routine `{routine}`"))?;
    let fault = FaultLevel::from_name(&fault)
        .ok_or_else(|| format!("unknown fault level `{fault}` (none, light or heavy)"))?;
    let ignore_faults = fault != FaultLevel::None;

    let (spec, system) = train_system(scale)?;
    let mut fleet = FleetSpec::new(devices, duration_s, 42);
    fleet.population = PopulationSpec::single(preset, fault);

    // Always compare a genuinely multi-threaded replay against the reference,
    // even on 1-core CI.
    let scheduler = FleetScheduler::new(&spec, &system);
    let scheduler = scheduler.with_threads(scheduler.worker_threads().max(4));

    // 1) Reference: the scenario-driven fleet.
    eprintln!(
        "[telemetry_replay] reference run: {devices} devices × {duration_s} s of {} (fault {})…",
        preset.label(),
        fault.label()
    );
    let reference = scheduler.run_collect(&fleet)?;
    println!("{}", reference.report.to_table_string());

    // 2) Record every device's stream and export it as a wire-format file.
    std::fs::create_dir_all(&trace_dir)?;
    let mut plans = Vec::with_capacity(devices as usize);
    let mut total_bytes = 0u64;
    for device_id in 0..devices {
        let plan = fleet.device_plan(device_id);
        let recorder = TraceRecorder::new(scheduler.device_source(&fleet, &plan));
        let mut runtime = DeviceRuntime::for_source(
            &spec,
            &system,
            fleet.controller,
            recorder,
            plan.scenario.duration_s(),
        )?
        .with_classifier(system.backend(plan.backend));
        runtime.run_to_completion();
        let trace = runtime.source().trace().clone();
        let mut file = std::fs::File::create(trace_path(&trace_dir, device_id))?;
        trace.encode_to(&mut file)?;
        total_bytes += file.metadata()?.len();
        plans.push(plan);
    }
    eprintln!(
        "[telemetry_replay] recorded {devices} traces ({:.1} KiB) to {}",
        total_bytes as f64 / 1024.0,
        trace_dir.display()
    );

    // 3) Serve every trace file over its own loopback listener and replay the
    //    cohort through SocketSources (file → socket → runtime).
    let mut feeds = Vec::with_capacity(plans.len());
    let mut servers = Vec::with_capacity(plans.len());
    for plan in &plans {
        let bytes = std::fs::read(trace_path(&trace_dir, plan.device_id))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        servers.push(std::thread::spawn(move || -> Result<(), String> {
            let (mut conn, _) = listener.accept().map_err(|e| e.to_string())?;
            conn.write_all(&bytes).map_err(|e| e.to_string())
        }));
        let source = SocketSource::tcp(&addr, ReconnectPolicy::default())?;
        feeds.push(
            ExternalDevice::new(plan.device_id, source)
                .with_metadata(plan.seed, plan.routine.clone())
                .with_backend(plan.backend),
        );
    }
    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
    let replayed = scheduler.run_with_feeds(&feed_only, feeds)?;
    for server in servers {
        server.join().expect("replay server thread")?;
    }
    compare_cohorts("socket replay", &reference.summaries, &replayed.summaries, ignore_faults)?;

    // 4) Mixed fleet: the scenario cohort and a channel-fed replay cohort in
    //    one scheduler run.
    let mut channel_feeds = Vec::with_capacity(plans.len());
    let mut feeders = Vec::with_capacity(plans.len());
    for plan in &plans {
        let bytes = std::fs::read(trace_path(&trace_dir, plan.device_id))?;
        let trace = TelemetryTrace::decode(&bytes)?;
        let (mut tx, source) = telemetry_channel(8);
        feeders.push(std::thread::spawn(move || tx.send_trace(&trace)));
        channel_feeds.push(
            ExternalDevice::new(devices + plan.device_id, source)
                .with_metadata(plan.seed, plan.routine.clone())
                .with_backend(plan.backend),
        );
    }
    let mixed = scheduler.run_with_feeds(&fleet, channel_feeds)?;
    for feeder in feeders {
        feeder.join().expect("channel feeder thread")?;
    }
    let (scenario_half, feed_half) = mixed.summaries.split_at(devices as usize);
    compare_cohorts("mixed fleet, scenario half", &reference.summaries, scenario_half, false)?;
    let mut expected_feed_half = reference.summaries.clone();
    for row in &mut expected_feed_half {
        row.device_id += devices;
        if ignore_faults {
            row.faulted_epochs = 0;
        }
    }
    compare_cohorts("mixed fleet, channel half", &expected_feed_half, feed_half, ignore_faults)?;

    println!(
        "determinism: socket and channel replays reproduce the scenario run bit for bit \
         ({} devices, {:.0} s, {}, fault {})",
        devices,
        duration_s,
        preset.label(),
        fault.label()
    );
    Ok(())
}
