//! Duty-cycle current model of the simulated accelerometer.
//!
//! The paper's key observation is that in low-power mode the averaging window — not
//! just the sampling frequency — determines how long the sensor must stay awake per
//! output sample, and therefore its average current.  This module captures that with
//! a small analytical model:
//!
//! * The sensor's internal sampling clock runs at `internal_rate_hz` (1600 Hz for the
//!   BMI160's under-sampling averaging).
//! * Producing one output sample requires the core to be active for
//!   `averaging_window / internal_rate_hz` seconds.
//! * The duty cycle is therefore `odr × averaging_window / internal_rate_hz`.
//! * If the duty cycle reaches 1 the sensor cannot sleep at all and must run in
//!   normal mode, where the averaging window no longer affects current.
//!
//! Average current is interpolated between the suspend and active currents by the
//! duty cycle, plus a small per-sample wake-up overhead and a small rate-dependent
//! digital overhead.  The defaults are calibrated so that the 16 configurations of
//! Table I land in the 10–200 µA range shown in Fig. 2 of the paper.

use serde::{Deserialize, Serialize};

use crate::config::{OperationMode, SensorConfig};

/// An amount of electric charge, in microcoulombs.
///
/// Multiplying an average current (µA) by a duration (s) yields charge (µC); dividing
/// accumulated charge by elapsed time recovers the average current.  Keeping the
/// accumulator in charge units makes energy accounting across state switches exact.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Charge {
    micro_coulombs: f64,
}

impl Charge {
    /// Zero charge.
    pub const ZERO: Charge = Charge { micro_coulombs: 0.0 };

    /// Creates a charge from a value in microcoulombs.
    pub fn from_micro_coulombs(micro_coulombs: f64) -> Self {
        Self { micro_coulombs }
    }

    /// Charge accumulated by drawing `current_ua` microamps for `seconds` seconds.
    ///
    /// ```
    /// use adasense_sensor::Charge;
    /// let c = Charge::from_current(100.0, 2.0);
    /// assert_eq!(c.micro_coulombs(), 200.0);
    /// ```
    pub fn from_current(current_ua: f64, seconds: f64) -> Self {
        Self { micro_coulombs: current_ua * seconds }
    }

    /// The charge in microcoulombs.
    pub fn micro_coulombs(self) -> f64 {
        self.micro_coulombs
    }

    /// Average current in microamps over `seconds` seconds.
    ///
    /// Returns 0 for non-positive durations.
    pub fn average_current_ua(self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.micro_coulombs / seconds
        }
    }
}

impl std::ops::Add for Charge {
    type Output = Charge;
    fn add(self, rhs: Charge) -> Charge {
        Charge { micro_coulombs: self.micro_coulombs + rhs.micro_coulombs }
    }
}

impl std::ops::AddAssign for Charge {
    fn add_assign(&mut self, rhs: Charge) {
        self.micro_coulombs += rhs.micro_coulombs;
    }
}

impl std::iter::Sum for Charge {
    fn sum<I: Iterator<Item = Charge>>(iter: I) -> Charge {
        iter.fold(Charge::ZERO, |acc, c| acc + c)
    }
}

/// Parameters of the duty-cycle current model.
///
/// Construct with [`EnergyModel::bmi160`] (the calibrated default) or adjust the
/// public fields for what-if analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Current drawn while the sensor core is active, in µA.
    pub active_current_ua: f64,
    /// Current drawn while the sensor core is suspended, in µA.
    pub suspend_current_ua: f64,
    /// Internal sampling clock used for under-sampling averaging, in Hz.
    pub internal_rate_hz: f64,
    /// Charge spent waking the core up for each output sample in low-power mode, in µC.
    pub wakeup_charge_uc: f64,
    /// Extra digital/interface current per Hz of output data rate, in µA/Hz.
    pub digital_overhead_ua_per_hz: f64,
}

impl EnergyModel {
    /// A model calibrated to BMI160-datasheet-scale numbers.
    ///
    /// With these values the Table I configurations span roughly 10–190 µA, matching
    /// the x-axis range of Fig. 2 in the paper, and the four paper Pareto states get
    /// distinct, strictly decreasing currents.
    pub fn bmi160() -> Self {
        Self {
            active_current_ua: 180.0,
            suspend_current_ua: 3.0,
            internal_rate_hz: 1600.0,
            wakeup_charge_uc: 0.09,
            digital_overhead_ua_per_hz: 0.1,
        }
    }

    /// Fraction of time the sensor core must be active for the given configuration.
    ///
    /// Saturates at 1.0; a saturated duty cycle means the configuration can only run
    /// in normal mode.
    pub fn duty_cycle(&self, config: SensorConfig) -> f64 {
        let active_time_per_sample = f64::from(config.averaging.samples()) / self.internal_rate_hz;
        (config.frequency.hz() * active_time_per_sample).min(1.0)
    }

    /// The operation mode the sensor must use for the given configuration.
    ///
    /// ```
    /// use adasense_sensor::{AveragingWindow, EnergyModel, OperationMode, SamplingFrequency, SensorConfig};
    /// let m = EnergyModel::bmi160();
    /// let hi = SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128);
    /// let lo = SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8);
    /// assert_eq!(m.operation_mode(hi), OperationMode::Normal);
    /// assert_eq!(m.operation_mode(lo), OperationMode::LowPower);
    /// ```
    pub fn operation_mode(&self, config: SensorConfig) -> OperationMode {
        if self.duty_cycle(config) >= 1.0 {
            OperationMode::Normal
        } else {
            OperationMode::LowPower
        }
    }

    /// Average current of the sensor under the given configuration, in µA.
    pub fn current_ua(&self, config: SensorConfig) -> f64 {
        let digital = self.digital_overhead_ua_per_hz * config.frequency.hz();
        match self.operation_mode(config) {
            OperationMode::Normal => self.active_current_ua + digital,
            OperationMode::LowPower => {
                let duty = self.duty_cycle(config);
                let base = self.suspend_current_ua
                    + duty * (self.active_current_ua - self.suspend_current_ua);
                let wakeups = self.wakeup_charge_uc * config.frequency.hz();
                base + wakeups + digital
            }
        }
    }

    /// Charge consumed by running the sensor in `config` for `seconds` seconds.
    pub fn charge_over(&self, config: SensorConfig, seconds: f64) -> Charge {
        Charge::from_current(self.current_ua(config), seconds)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::bmi160()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AveragingWindow, SamplingFrequency};

    fn cfg(f: SamplingFrequency, a: AveragingWindow) -> SensorConfig {
        SensorConfig::new(f, a)
    }

    #[test]
    fn a128_configurations_at_high_rates_run_in_normal_mode() {
        let m = EnergyModel::bmi160();
        for f in [SamplingFrequency::F100, SamplingFrequency::F50, SamplingFrequency::F25] {
            assert_eq!(m.operation_mode(cfg(f, AveragingWindow::A128)), OperationMode::Normal);
        }
    }

    #[test]
    fn small_windows_at_low_rates_run_in_low_power_mode() {
        let m = EnergyModel::bmi160();
        assert_eq!(
            m.operation_mode(cfg(SamplingFrequency::F12_5, AveragingWindow::A8)),
            OperationMode::LowPower
        );
        assert_eq!(
            m.operation_mode(cfg(SamplingFrequency::F6_25, AveragingWindow::A128)),
            OperationMode::LowPower
        );
    }

    #[test]
    fn normal_mode_current_ignores_averaging_window() {
        let m = EnergyModel::bmi160();
        let a = m.current_ua(cfg(SamplingFrequency::F100, AveragingWindow::A128));
        // In normal mode only the digital overhead (rate-dependent) matters, so two
        // normal-mode configs at the same rate draw the same current.
        let b = m.current_ua(cfg(SamplingFrequency::F100, AveragingWindow::A32));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn paper_pareto_states_have_strictly_decreasing_current() {
        let m = EnergyModel::bmi160();
        let currents: Vec<f64> =
            SensorConfig::paper_pareto_front().iter().map(|c| m.current_ua(*c)).collect();
        for pair in currents.windows(2) {
            assert!(pair[0] > pair[1], "expected strictly decreasing currents, got {currents:?}");
        }
    }

    #[test]
    fn currents_span_the_figure_2_range() {
        let m = EnergyModel::bmi160();
        let currents: Vec<f64> = SensorConfig::table_i().iter().map(|c| m.current_ua(*c)).collect();
        let min = currents.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = currents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 5.0 && min < 30.0, "min current {min} outside expected range");
        assert!(max > 150.0 && max < 250.0, "max current {max} outside expected range");
    }

    #[test]
    fn current_is_monotone_in_frequency_for_fixed_window() {
        let m = EnergyModel::bmi160();
        for &a in &AveragingWindow::ALL {
            let currents: Vec<f64> =
                SamplingFrequency::ALL.iter().map(|&f| m.current_ua(cfg(f, a))).collect();
            for pair in currents.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-9, "current must not decrease with rate");
            }
        }
    }

    #[test]
    fn current_is_monotone_in_window_for_fixed_frequency() {
        let m = EnergyModel::bmi160();
        for &f in &SamplingFrequency::ALL {
            let currents: Vec<f64> =
                AveragingWindow::ALL.iter().map(|&a| m.current_ua(cfg(f, a))).collect();
            for pair in currents.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-9, "current must not decrease with window");
            }
        }
    }

    #[test]
    fn charge_accumulates_linearly_with_time() {
        let m = EnergyModel::bmi160();
        let config = cfg(SamplingFrequency::F50, AveragingWindow::A16);
        let one = m.charge_over(config, 1.0);
        let ten = m.charge_over(config, 10.0);
        assert!((ten.micro_coulombs() - 10.0 * one.micro_coulombs()).abs() < 1e-9);
    }

    #[test]
    fn charge_recovers_average_current() {
        let c = Charge::from_current(42.0, 3.0);
        assert!((c.average_current_ua(3.0) - 42.0).abs() < 1e-12);
        assert_eq!(c.average_current_ua(0.0), 0.0);
    }

    #[test]
    fn charge_addition_and_sum() {
        let a = Charge::from_current(10.0, 1.0);
        let b = Charge::from_current(20.0, 1.0);
        assert_eq!((a + b).micro_coulombs(), 30.0);
        let total: Charge = vec![a, b, a].into_iter().sum();
        assert_eq!(total.micro_coulombs(), 40.0);
    }

    #[test]
    fn duty_cycle_saturates_at_one() {
        let m = EnergyModel::bmi160();
        assert_eq!(m.duty_cycle(cfg(SamplingFrequency::F100, AveragingWindow::A128)), 1.0);
        assert!(m.duty_cycle(cfg(SamplingFrequency::F6_25, AveragingWindow::A8)) < 0.05);
    }
}
