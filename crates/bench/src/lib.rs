//! # adasense-bench
//!
//! Benchmark and experiment harness for the AdaSense reproduction.
//!
//! This crate contains two things:
//!
//! * **Experiment binaries** (`src/bin/`), one per paper table/figure.  Each binary
//!   trains the HAR system, runs the corresponding experiment from
//!   [`adasense::experiments`] and prints the same rows/series the paper reports.
//!   Pass `--quick` for a reduced, fast run or `--paper` (the default) for the
//!   full-scale reproduction.
//! * **Criterion benches** (`benches/`), which measure the runtime cost of the
//!   pipeline components (feature extraction, classification, controller decisions,
//!   sensor capture) and of the experiment building blocks.
//!
//! The library part only holds small helpers shared by the binaries.

use adasense::prelude::*;

/// How large an experiment the binaries should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced dataset and shorter scenarios — finishes in seconds.
    Quick,
    /// The paper-scale experiment.
    Paper,
}

impl RunScale {
    /// Parses the scale from command-line arguments: `--quick` selects
    /// [`RunScale::Quick`], anything else (including `--paper`) the full run.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            RunScale::Quick
        } else {
            RunScale::Paper
        }
    }

    /// The experiment specification for this scale.
    pub fn spec(self) -> ExperimentSpec {
        match self {
            RunScale::Quick => ExperimentSpec::quick(),
            RunScale::Paper => ExperimentSpec::paper(),
        }
    }

    /// The stability-sweep settings for this scale.
    pub fn sweep_settings(self) -> experiments::StabilitySweepSettings {
        match self {
            RunScale::Quick => experiments::StabilitySweepSettings::quick(),
            RunScale::Paper => experiments::StabilitySweepSettings::paper(),
        }
    }

    /// The intensity-comparison settings for this scale.
    pub fn iba_settings(self) -> experiments::IbaComparisonSettings {
        match self {
            RunScale::Quick => experiments::IbaComparisonSettings::quick(),
            RunScale::Paper => experiments::IbaComparisonSettings::paper(),
        }
    }
}

/// The string following `name` on the command line, or an error if the value is
/// missing.  Shared by the experiment binaries (a silently ignored flag would
/// run the default configuration and still exit 0).
///
/// # Errors
///
/// Returns a message naming the flag when no value follows it.
pub fn string_arg(name: &str) -> Result<Option<String>, String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().map(Some).ok_or_else(|| format!("{name} requires a value"));
        }
    }
    Ok(None)
}

/// The integer following `name` on the command line, or an error if it is
/// missing or not a number.
///
/// # Errors
///
/// Returns a message naming the flag when the value is missing or malformed.
pub fn int_arg(name: &str) -> Result<Option<u64>, String> {
    match string_arg(name)? {
        None => Ok(None),
        Some(value) => {
            value.parse().map(Some).map_err(|_| format!("{name} expects an integer, got `{value}`"))
        }
    }
}

/// Peak resident set size of this process so far, in bytes, read from
/// `/proc/self/status` (`VmHWM`).  Returns `None` off Linux or when the file
/// is unreadable — callers should report the figure as unavailable rather
/// than fail the run.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// One fleet-throughput measurement, serialized to `BENCH_fleet.json` by
/// `fleet_sim --bench-json` and enforced per PR by the `perf-track` CI
/// ratchet (`fleet_sim --bench-baseline` fails on a >20% regression).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBench {
    /// Cohort size (devices simulated).
    pub devices: u64,
    /// Simulated seconds per device.
    pub duration_s: f64,
    /// Inference backend the cohort ran on (`f64`, `int8`, `cascade`, …).
    pub backend: String,
    /// Classified epochs across the whole cohort (one device-tick each).
    pub device_ticks: u64,
    /// Wall-clock seconds of the fleet run (training excluded).
    pub wall_s: f64,
    /// Worker threads the scheduler ran with.
    pub threads: usize,
    /// Peak resident set size in bytes, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl FleetBench {
    /// Simulated device-ticks per wall-clock second.
    pub fn device_ticks_per_sec(&self) -> f64 {
        self.device_ticks as f64 / self.wall_s.max(1e-9)
    }

    /// The JSON document written to `BENCH_fleet.json` (hand-rolled: the
    /// vendored serde is a no-op stand-in, and the schema is seven keys).
    pub fn to_json(&self) -> String {
        let rss = match self.peak_rss_bytes {
            Some(bytes) => bytes.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"devices\": {},\n  \"duration_s\": {:.1},\n  \"backend\": \"{}\",\n  \
             \"device_ticks\": {},\n  \"wall_s\": {:.3},\n  \"device_ticks_per_sec\": {:.1},\n  \
             \"threads\": {},\n  \"peak_rss_bytes\": {}\n}}\n",
            self.devices,
            self.duration_s,
            self.backend,
            self.device_ticks,
            self.wall_s,
            self.device_ticks_per_sec(),
            self.threads,
            rss
        )
    }

    /// Parses a `BENCH_fleet.json` document produced by [`FleetBench::to_json`].
    ///
    /// Hand-rolled for the same reason `to_json` is: the vendored serde is a
    /// no-op stand-in.  The parser is deliberately forgiving about whitespace
    /// and key order but strict about the keys themselves, so a ratchet run
    /// against a malformed or stale baseline fails loudly instead of
    /// comparing against garbage.  Baselines written before the `backend` key
    /// existed default it to `f64` (the only backend those baselines ran).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed key.
    pub fn from_json(text: &str) -> Result<Self, String> {
        fn raw_value(text: &str, key: &str) -> Result<String, String> {
            let needle = format!("\"{key}\"");
            let at = text.find(&needle).ok_or_else(|| format!("missing key `{key}`"))?;
            let rest = &text[at + needle.len()..];
            let rest = rest
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| format!("no `:` after key `{key}`"))?
                .trim_start();
            let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
            Ok(rest[..end].trim().to_string())
        }
        fn number<T: std::str::FromStr>(text: &str, key: &str) -> Result<T, String> {
            raw_value(text, key)?.parse().map_err(|_| format!("key `{key}` is not a valid number"))
        }
        let backend = match raw_value(text, "backend") {
            Ok(raw) => raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| "key `backend` is not a string".to_string())?
                .to_string(),
            Err(_) => "f64".to_string(),
        };
        let rss_raw = raw_value(text, "peak_rss_bytes")?;
        let peak_rss_bytes = if rss_raw == "null" {
            None
        } else {
            Some(rss_raw.parse().map_err(|_| "key `peak_rss_bytes` is not a valid number")?)
        };
        Ok(Self {
            devices: number(text, "devices")?,
            duration_s: number(text, "duration_s")?,
            backend,
            device_ticks: number(text, "device_ticks")?,
            wall_s: number(text, "wall_s")?,
            threads: number(text, "threads")?,
            peak_rss_bytes,
        })
    }
}

/// Records every device of `fleet` as a wire-format telemetry trace by
/// replaying its scenario through a standalone runtime under a
/// `TraceRecorder` — the serving side of the live-ingestion soak tests
/// (`telemetry_serve` pre-renders these, `reactor_fleet` consumes them live).
///
/// # Errors
///
/// Propagates runtime construction errors.
pub fn record_fleet_traces(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
    fleet: &FleetSpec,
) -> Result<Vec<(u64, TelemetryTrace)>, AdaSenseError> {
    let scheduler = FleetScheduler::new(spec, system);
    let mut traces = Vec::with_capacity(fleet.devices as usize);
    for device_id in 0..fleet.devices {
        let plan = fleet.device_plan(device_id);
        let recorder = adasense::ingest::TraceRecorder::new(scheduler.device_source(fleet, &plan));
        let mut runtime = DeviceRuntime::for_source(
            spec,
            system,
            fleet.controller,
            recorder,
            plan.scenario.duration_s(),
        )?
        .with_classifier(system.backend(plan.backend));
        runtime.run_to_completion();
        traces.push((device_id, runtime.source().trace().clone()));
    }
    Ok(traces)
}

/// One device's lifetime in a churn soak: when it joins the fleet clock and
/// how much of the full duration it streams before departing.  Produced by
/// [`churn_plan`], consumed identically by `telemetry_serve --churn` (trace
/// lengths, JOIN start-epochs) and `reactor_fleet --churn` (reference
/// lifetimes, feed metadata) — the two processes must agree or the
/// byte-identity gate fails, which is the point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEntry {
    /// The device's id within the fleet.
    pub device_id: u64,
    /// Fleet epoch at which the device joins the cohort (0 = present from
    /// the start).
    pub start_epoch: u64,
    /// Seconds of its scenario the device streams before its trace ends.
    pub lifetime_s: f64,
    /// Whether the device departs before the full fleet duration.
    pub departed: bool,
}

/// The deterministic churn schedule for a `devices`-strong soak over
/// `duration_s` seconds: every odd device joins late (half the fleet), every
/// `4k+2` device departs early (a quarter), and lifetimes/start-epochs vary
/// with the device id so no two shards of the timeline look alike.
pub fn churn_plan(devices: u64, duration_s: f64) -> Vec<ChurnEntry> {
    (0..devices)
        .map(|device_id| {
            let start_epoch = if device_id % 2 == 1 { 1 + device_id % 7 } else { 0 };
            let departed = device_id % 4 == 2;
            let lifetime_s = if departed {
                // A quarter, half or three quarters of the run, but never
                // below one full capture window.
                ((device_id % 3 + 1) as f64 * duration_s / 4.0).max(2.0)
            } else {
                duration_s
            };
            ChurnEntry { device_id, start_epoch, lifetime_s, departed }
        })
        .collect()
}

/// Like [`record_fleet_traces`], but each device records only over its
/// [`ChurnEntry::lifetime_s`] window — the per-lifetime traces behind the
/// churn soak's byte-identity gate.
///
/// # Errors
///
/// Propagates runtime construction errors.
pub fn record_churn_traces(
    spec: &ExperimentSpec,
    system: &TrainedSystem,
    fleet: &FleetSpec,
    plan: &[ChurnEntry],
) -> Result<Vec<(u64, TelemetryTrace)>, AdaSenseError> {
    let scheduler = FleetScheduler::new(spec, system);
    let mut traces = Vec::with_capacity(plan.len());
    for entry in plan {
        let device = fleet.device_plan(entry.device_id);
        let recorder =
            adasense::ingest::TraceRecorder::new(scheduler.device_source(fleet, &device));
        let mut runtime =
            DeviceRuntime::for_source(spec, system, fleet.controller, recorder, entry.lifetime_s)?
                .with_classifier(system.backend(device.backend));
        runtime.run_to_completion();
        traces.push((entry.device_id, runtime.source().trace().clone()));
    }
    Ok(traces)
}

/// Trains the HAR system for the selected scale, printing a short progress note.
///
/// # Errors
///
/// Propagates training errors from [`TrainedSystem::train`].
pub fn train_system(scale: RunScale) -> Result<(ExperimentSpec, TrainedSystem), AdaSenseError> {
    let spec = scale.spec();
    eprintln!(
        "[adasense-bench] training on {} windows across {} configurations…",
        spec.dataset.total_windows(),
        spec.dataset.configs.len()
    );
    let system = TrainedSystem::train(&spec)?;
    eprintln!(
        "[adasense-bench] unified classifier held-out accuracy: {:.2}%",
        100.0 * system.unified_test_accuracy()
    );
    Ok((spec, system))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_bench_json_round_trips() {
        let bench = FleetBench {
            devices: 256,
            duration_s: 120.0,
            backend: "cascade".to_string(),
            device_ticks: 33826,
            wall_s: 4.25,
            threads: 4,
            peak_rss_bytes: Some(8_994_816),
        };
        let parsed = FleetBench::from_json(&bench.to_json()).unwrap();
        assert_eq!(parsed, bench);
        assert!((parsed.device_ticks_per_sec() - 33826.0 / 4.25).abs() < 1e-9);

        let no_rss = FleetBench { peak_rss_bytes: None, ..bench.clone() };
        assert_eq!(FleetBench::from_json(&no_rss.to_json()).unwrap(), no_rss);
    }

    #[test]
    fn fleet_bench_parser_defaults_backend_and_rejects_garbage() {
        // A pre-`backend` baseline (the PR 6 schema) parses with backend f64.
        let legacy = "{\n  \"devices\": 256,\n  \"duration_s\": 120.0,\n  \
                      \"device_ticks\": 33826,\n  \"wall_s\": 21.393,\n  \
                      \"device_ticks_per_sec\": 1581.2,\n  \"threads\": 4,\n  \
                      \"peak_rss_bytes\": 8994816\n}\n";
        let parsed = FleetBench::from_json(legacy).unwrap();
        assert_eq!(parsed.backend, "f64");
        assert_eq!(parsed.device_ticks, 33826);
        assert_eq!(parsed.peak_rss_bytes, Some(8_994_816));

        assert!(FleetBench::from_json("{}").unwrap_err().contains("missing key"));
        let malformed = legacy.replace("\"devices\": 256", "\"devices\": \"many\"");
        assert!(FleetBench::from_json(&malformed).unwrap_err().contains("devices"));
    }

    #[test]
    fn churn_plan_is_deterministic_and_hits_the_soak_quotas() {
        let plan = churn_plan(512, 8.0);
        assert_eq!(plan.len(), 512);
        assert_eq!(plan.iter().filter(|e| e.start_epoch > 0).count(), 256, "half join late");
        assert_eq!(plan.iter().filter(|e| e.departed).count(), 128, "a quarter depart early");
        assert!(plan.iter().all(|e| e.lifetime_s >= 2.0 && e.lifetime_s <= 8.0));
        assert!(plan.iter().filter(|e| e.departed).all(|e| e.lifetime_s < 8.0));
        assert_eq!(plan, churn_plan(512, 8.0), "the schedule is a pure function of its inputs");
    }

    #[test]
    fn scales_map_to_the_expected_specs() {
        assert_eq!(RunScale::Quick.spec(), ExperimentSpec::quick());
        assert_eq!(RunScale::Paper.spec(), ExperimentSpec::paper());
        assert!(
            RunScale::Paper.sweep_settings().thresholds.len()
                > RunScale::Quick.sweep_settings().thresholds.len()
        );
        assert!(
            RunScale::Paper.iba_settings().scenario_duration_s
                > RunScale::Quick.iba_settings().scenario_duration_s
        );
    }
}
