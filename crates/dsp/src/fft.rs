//! Spectral analysis: radix-2 FFT, direct DFT and the Goertzel algorithm.
//!
//! The paper keeps only the first three Fourier coefficients per axis ("representing
//! the frequency components up to 3 Hz", Section III-B).  Computing three isolated
//! bins is exactly what the Goertzel algorithm is for, and it is what AdaSense's
//! feature extractor uses; the full FFT/DFT implementations are provided for
//! verification (property tests check they agree) and for analyses that need the
//! whole spectrum.

use serde::{Deserialize, Serialize};

/// A complex number (minimal implementation sufficient for spectral analysis).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Magnitude (absolute value).
    pub fn magnitude(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
///
/// Panics if the input length is not a power of two (use [`dft_magnitudes`] or
/// [`goertzel_magnitude`] for arbitrary lengths).
pub fn fft_radix2(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "radix-2 FFT requires a power-of-two length, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let angle = -std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let even = data[start + k];
                let odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Magnitudes of the first `bins` DFT coefficients of `signal` (direct evaluation,
/// any length).
///
/// Bin `k` corresponds to frequency `k / (n / sample_rate)` Hz for an `n`-point
/// signal.  Bin 0 (the DC component) is included; callers interested in the paper's
/// "first three coefficients" typically request bins 1..=3 via
/// [`goertzel_magnitude`].
pub fn dft_magnitudes(signal: &[f64], bins: usize) -> Vec<f64> {
    let n = signal.len();
    let mut out = Vec::with_capacity(bins);
    if n == 0 {
        out.resize(bins, 0.0);
        return out;
    }
    for k in 0..bins {
        let mut acc = Complex::default();
        for (i, &v) in signal.iter().enumerate() {
            let angle = -std::f64::consts::TAU * k as f64 * i as f64 / n as f64;
            acc = acc + Complex::from_angle(angle) * Complex::new(v, 0.0);
        }
        out.push(acc.magnitude());
    }
    out
}

/// Magnitude of a single DFT bin of `signal`, computed with the Goertzel algorithm.
///
/// `bin` may be fractional, which allows evaluating a fixed physical frequency
/// (e.g. 1 Hz) on windows of any length and sampling rate: the bin for frequency
/// `f` is `f × n / sample_rate`.
///
/// Returns 0 for an empty signal.
pub fn goertzel_magnitude(signal: &[f64], bin: f64) -> f64 {
    goertzel_magnitude_of(signal.len(), bin, signal.iter().copied())
}

/// [`goertzel_magnitude`] over any scalar sequence of known length `n`.
///
/// Lets callers run the recurrence over strided views (for example one axis of
/// an interleaved 3-axis sample buffer) without first copying the axis into a
/// contiguous scratch vector.  Bit-identical to [`goertzel_magnitude`] on the
/// equivalent contiguous slice.  The iterator is trusted to yield `n` items;
/// fewer simply end the recurrence early.
pub fn goertzel_magnitude_of(n: usize, bin: f64, values: impl Iterator<Item = f64>) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let omega = std::f64::consts::TAU * bin / n as f64;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for v in values {
        let s = v + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let re = s_prev - s_prev2 * omega.cos();
    let im = s_prev2 * omega.sin();
    (re * re + im * im).sqrt()
}

/// A reusable execution plan for repeated real-input FFTs.
///
/// Owns the complex working buffer, so a streaming loop that transforms one
/// window per tick performs no heap allocation once the buffer has grown to the
/// largest (padded) window size.  The input is zero-padded to the next power of
/// two and transformed in place with [`fft_radix2`].
///
/// ```
/// use adasense_dsp::FftPlan;
/// let mut plan = FftPlan::new();
/// let signal: Vec<f64> = (0..50).map(|k| (k as f64 * 0.4).sin()).collect();
/// let spectrum = plan.forward_real(&signal);
/// assert_eq!(spectrum.len(), 64);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FftPlan {
    scratch: Vec<Complex>,
}

impl FftPlan {
    /// Creates an empty plan (the working buffer grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Transforms `signal` (zero-padded to the next power of two) and returns
    /// the spectrum, valid until the next call.  An empty signal yields an
    /// empty spectrum.
    pub fn forward_real(&mut self, signal: &[f64]) -> &[Complex] {
        self.scratch.clear();
        if signal.is_empty() {
            return &self.scratch;
        }
        let padded = signal.len().next_power_of_two();
        self.scratch.reserve(padded);
        self.scratch.extend(signal.iter().map(|&v| Complex::new(v, 0.0)));
        self.scratch.resize(padded, Complex::default());
        fft_radix2(&mut self.scratch);
        &self.scratch
    }

    /// Transforms `signal` and writes the magnitudes of the first `bins`
    /// spectrum bins into `out` (cleared first, zero-padded if the spectrum is
    /// shorter than `bins`).
    pub fn magnitudes_into(&mut self, signal: &[f64], bins: usize, out: &mut Vec<f64>) {
        let spectrum = self.forward_real(signal);
        out.clear();
        out.reserve(bins);
        out.extend(spectrum.iter().take(bins).map(|c| c.magnitude()));
        out.resize(bins, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles: f64, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amplitude * (std::f64::consts::TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_radix2(&mut data);
        for c in data {
            assert!((c.magnitude() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_finds_a_pure_tone() {
        let signal = tone(64, 5.0, 2.0);
        let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_radix2(&mut data);
        let magnitudes: Vec<f64> = data.iter().map(|c| c.magnitude()).collect();
        // Peak at bin 5 (and its mirror 59) with magnitude n*amplitude/2 = 64.
        let peak = magnitudes
            .iter()
            .enumerate()
            .take(32)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, 5);
        assert!((peak.1 - 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 12];
        fft_radix2(&mut data);
    }

    #[test]
    fn dft_and_fft_agree_on_power_of_two_lengths() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 7 % 13) as f64 - 6.0) * 0.1).collect();
        let direct = dft_magnitudes(&signal, 16);
        let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_radix2(&mut data);
        for (k, d) in direct.iter().enumerate() {
            assert!((d - data[k].magnitude()).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn goertzel_matches_dft_on_integer_bins() {
        let signal = tone(50, 3.0, 1.0);
        let direct = dft_magnitudes(&signal, 6);
        for (k, &d) in direct.iter().enumerate() {
            let g = goertzel_magnitude(&signal, k as f64);
            assert!((g - d).abs() < 1e-9, "bin {k}: {g} vs {d}");
        }
    }

    #[test]
    fn goertzel_handles_fractional_bins() {
        // A 2.5-cycle tone peaks at fractional bin 2.5.
        let signal = tone(40, 2.5, 1.0);
        let at_peak = goertzel_magnitude(&signal, 2.5);
        let off_peak = goertzel_magnitude(&signal, 1.0);
        assert!(at_peak > 3.0 * off_peak);
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(goertzel_magnitude(&[], 1.0), 0.0);
        assert_eq!(dft_magnitudes(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn dc_bin_is_the_sum() {
        let signal = vec![1.0, 2.0, 3.0, 4.0];
        assert!((dft_magnitudes(&signal, 1)[0] - 10.0).abs() < 1e-12);
        assert!((goertzel_magnitude(&signal, 0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn plan_matches_manual_padded_fft() {
        let signal = tone(50, 3.0, 1.0);
        let mut plan = FftPlan::new();
        let planned: Vec<Complex> = plan.forward_real(&signal).to_vec();
        let mut manual: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        manual.resize(64, Complex::default());
        fft_radix2(&mut manual);
        assert_eq!(planned, manual);
        // Reusing the plan on a different length must still agree.
        let short = tone(16, 2.0, 0.5);
        let again: Vec<Complex> = plan.forward_real(&short).to_vec();
        let mut manual_short: Vec<Complex> = short.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_radix2(&mut manual_short);
        assert_eq!(again, manual_short);
    }

    #[test]
    fn plan_magnitudes_pad_missing_bins() {
        let mut plan = FftPlan::new();
        let mut out = vec![9.0; 2];
        plan.magnitudes_into(&[1.0, 2.0, 3.0, 4.0], 6, &mut out);
        assert_eq!(out.len(), 6);
        assert!((out[0] - 10.0).abs() < 1e-12, "DC bin is the sum");
        assert_eq!(&out[4..], &[0.0, 0.0], "bins past the spectrum are zero");
        plan.magnitudes_into(&[], 3, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn goertzel_of_strided_view_matches_contiguous() {
        let interleaved: Vec<[f64; 3]> =
            (0..40).map(|k| [(k as f64 * 0.3).sin(), (k as f64 * 0.7).cos(), k as f64]).collect();
        for axis in 0..3 {
            let contiguous: Vec<f64> = interleaved.iter().map(|v| v[axis]).collect();
            let strided =
                goertzel_magnitude_of(interleaved.len(), 2.5, interleaved.iter().map(|v| v[axis]));
            assert_eq!(strided.to_bits(), goertzel_magnitude(&contiguous, 2.5).to_bits());
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!((Complex::from_angle(0.0).re - 1.0).abs() < 1e-15);
    }
}
