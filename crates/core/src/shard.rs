//! Sharded, mergeable fleet aggregation: the machinery behind million-device
//! cohorts on one box.
//!
//! A monolithic [`FleetScheduler`](crate::fleet::FleetScheduler) run used to
//! hold every [`DeviceSummary`] in RAM and sort
//! per-device value vectors to answer percentile queries — fine for thousands
//! of devices, a hard wall long before a million.  This module replaces that
//! with state that is **bounded** (independent of the device count) and
//! **mergeable** (reports from independent shards combine into exactly the
//! monolithic report):
//!
//! * [`ExactSum`] — an order-independent, *exact* `f64` accumulator (a
//!   fixed-point superaccumulator spanning the whole IEEE-754 double range).
//!   Because the state encodes the exact real-number sum, merging shard sums
//!   is bit-identical to the monolithic left-to-right sum — float addition's
//!   non-associativity never enters.
//! * [`QuantileSketch`] — a mergeable quantile sketch over fixed,
//!   data-independent buckets (sign, exponent and the top
//!   [`QuantileSketch::MANTISSA_BITS`] mantissa bits of each value).  Merge is
//!   bucket-count addition, so it is *fully* associative and commutative —
//!   stronger than the classic t-digest, whose centroid re-compression makes
//!   merge results depend on the merge tree.  The price is that percentile
//!   answers are magnitude-truncated bucket representatives (relative error
//!   below 2^-12 ≈ 0.025%) instead of exact order statistics.
//! * [`FleetStats`] — the full mergeable report state: device/epoch totals,
//!   exact metric sums, quantile sketches, per-routine / per-backend /
//!   per-configuration groups.  This is what a
//!   [`FleetReport`](crate::fleet::FleetReport) carries.
//! * [`ShardRange`] / [`FleetSpec::shards`](crate::fleet::FleetSpec::shards)
//!   — contiguous device-id ranges aligned to lockstep-chunk boundaries, so a
//!   shard schedules exactly the chunks the monolithic run would.
//! * [`SpoolWriter`] / [`SpoolReader`] — a compact on-disk spool for
//!   completed [`DeviceSummary`] rows, so
//!   per-device detail survives a bounded-memory run without ever living in
//!   RAM (spec in `docs/WIRE_FORMAT.md`).
//!
//! # Canonical merge order
//!
//! Every merge in this module is associative and commutative *by
//! construction* (counter addition and exact big-integer addition), so any
//! merge order yields bit-identical state.  The documented canonical order —
//! what `fleet_shard` and the tests use, and what any new coordinator should
//! follow — is **ascending shard index** (equivalently, ascending device-id
//! range).  Sticking to one order keeps diagnostic transcripts comparable
//! even though the algebra does not require it.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use adasense_sensor::{SensorConfig, TxPolicy};

use crate::error::AdaSenseError;
use crate::fleet::DeviceSummary;

// ---------------------------------------------------------------------------
// ExactSum
// ---------------------------------------------------------------------------

/// Number of 64-bit limbs in the superaccumulator.  Finite-double mantissa
/// bits occupy positions `0..=2097` (scaled by 2^-1074); the remaining 78
/// bits are carry headroom for far more than 2^64 additions.
const LIMBS: usize = 34;

/// An exact, order-independent sum of `f64` values.
///
/// The accumulator keeps the *exact* sum of every finite addend as a
/// fixed-point big integer covering the entire double range (one magnitude
/// per sign), plus counters for non-finite inputs.  Consequences:
///
/// * Adding the same multiset of values in **any order** — including adding
///   them on different shards and merging — produces bit-identical state.
/// * [`value`](ExactSum::value) rounds the exact sum to the nearest `f64`
///   (ties to even), so the returned double is also order-independent.
/// * NaN and infinities are tracked by count and dominate the result the way
///   IEEE addition would (any NaN → NaN, opposing infinities → NaN).
///
/// # Examples
///
/// ```
/// use adasense::shard::ExactSum;
///
/// let mut forward = ExactSum::new();
/// let mut backward = ExactSum::new();
/// let values = [0.1, 0.2, 0.3, 1e100, -1e100];
/// for v in values {
///     forward.add(v);
/// }
/// for v in values.iter().rev() {
///     backward.add(*v);
/// }
/// // Float addition would disagree between the two orders; the exact
/// // accumulator cannot, and it returns the correctly rounded sum (which
/// // left-to-right float addition of these values does not produce).
/// assert_eq!(forward, backward);
/// assert_eq!(forward.value(), 0.6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSum {
    /// Magnitude of the positive addends, little-endian base-2^64, bit 0 =
    /// 2^-1074.
    pos: [u64; LIMBS],
    /// Magnitude of the negative addends (same scale).
    neg: [u64; LIMBS],
    /// Number of NaN addends.
    nan: u64,
    /// Number of `+inf` addends.
    pos_inf: u64,
    /// Number of `-inf` addends.
    neg_inf: u64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// An empty sum (value `0.0`).
    pub fn new() -> Self {
        Self { pos: [0; LIMBS], neg: [0; LIMBS], nan: 0, pos_inf: 0, neg_inf: 0 }
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        let bits = value.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as u32;
        let fraction = bits & ((1u64 << 52) - 1);
        let negative = bits >> 63 == 1;
        if exponent == 0x7ff {
            if fraction != 0 {
                self.nan += 1;
            } else if negative {
                self.neg_inf += 1;
            } else {
                self.pos_inf += 1;
            }
            return;
        }
        // value = mantissa × 2^(shift - 1074) with mantissa < 2^53.
        let (mantissa, shift) = if exponent == 0 {
            (fraction, 0u32) // subnormal (or zero: a no-op addition)
        } else {
            (fraction | (1u64 << 52), exponent - 1)
        };
        if mantissa == 0 {
            return;
        }
        let limbs = if negative { &mut self.neg } else { &mut self.pos };
        add_shifted(limbs, mantissa, shift as usize);
    }

    /// Merges another accumulator into this one.  Equivalent to adding every
    /// value the other accumulator has seen; exact, so order never matters.
    pub fn merge(&mut self, other: &ExactSum) {
        add_limbs(&mut self.pos, &other.pos);
        add_limbs(&mut self.neg, &other.neg);
        self.nan += other.nan;
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
    }

    /// The sum, correctly rounded to the nearest `f64` (ties to even).
    ///
    /// NaN if any addend was NaN or both infinities appeared; the respective
    /// infinity if only one sign of infinity appeared.  A zero sum is always
    /// `+0.0`: the accumulator does not track the sign of zero (IEEE addition
    /// itself yields `+0.0` for every cancelling sum — only multisets of
    /// nothing but `-0.0` would differ).
    pub fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        match compare_limbs(&self.pos, &self.neg) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => round_limbs(&sub_limbs(&self.pos, &self.neg)),
            std::cmp::Ordering::Less => -round_limbs(&sub_limbs(&self.neg, &self.pos)),
        }
    }

    /// Writes the canonical binary form (fixed length) into `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        for limb in self.pos.iter().chain(&self.neg) {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        out.extend_from_slice(&self.nan.to_le_bytes());
        out.extend_from_slice(&self.pos_inf.to_le_bytes());
        out.extend_from_slice(&self.neg_inf.to_le_bytes());
    }

    /// Reads the canonical binary form written by `encode_into`.
    fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, AdaSenseError> {
        let mut sum = Self::new();
        for limb in sum.pos.iter_mut().chain(&mut sum.neg) {
            *limb = cursor.u64()?;
        }
        sum.nan = cursor.u64()?;
        sum.pos_inf = cursor.u64()?;
        sum.neg_inf = cursor.u64()?;
        Ok(sum)
    }
}

/// Adds `mantissa × 2^shift` into the little-endian limb array.
fn add_shifted(limbs: &mut [u64; LIMBS], mantissa: u64, shift: usize) {
    let limb = shift / 64;
    let offset = shift % 64;
    let wide = (mantissa as u128) << offset; // ≤ 53 + 63 bits, fits u128
    let mut carry: u128 = wide;
    let mut i = limb;
    while carry != 0 {
        debug_assert!(i < LIMBS, "superaccumulator overflow (more than ~2^78 device-sums)");
        let sum = limbs[i] as u128 + (carry & u64::MAX as u128);
        limbs[i] = sum as u64;
        carry = (carry >> 64) + (sum >> 64);
        i += 1;
    }
}

/// `a += b` over little-endian limb arrays.
fn add_limbs(a: &mut [u64; LIMBS], b: &[u64; LIMBS]) {
    let mut carry = 0u128;
    for (x, y) in a.iter_mut().zip(b) {
        let sum = *x as u128 + *y as u128 + carry;
        *x = sum as u64;
        carry = sum >> 64;
    }
    debug_assert_eq!(carry, 0, "superaccumulator overflow");
}

/// Lexicographic (numeric) comparison of two magnitudes.
fn compare_limbs(a: &[u64; LIMBS], b: &[u64; LIMBS]) -> std::cmp::Ordering {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// `a - b` over little-endian limb arrays; requires `a >= b`.
fn sub_limbs(a: &[u64; LIMBS], b: &[u64; LIMBS]) -> [u64; LIMBS] {
    let mut out = [0u64; LIMBS];
    let mut borrow = 0u64;
    for i in 0..LIMBS {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 || b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub_limbs requires a >= b");
    out
}

/// Bit `position` of the magnitude (0 = least significant).
fn limb_bit(limbs: &[u64; LIMBS], position: usize) -> bool {
    (limbs[position / 64] >> (position % 64)) & 1 == 1
}

/// Rounds the non-zero magnitude `limbs × 2^-1074` to the nearest `f64`
/// (ties to even).  Returns `+inf` if the exact sum overflows the double
/// range.
fn round_limbs(limbs: &[u64; LIMBS]) -> f64 {
    let top = (0..LIMBS * 64).rev().find(|&i| limb_bit(limbs, i)).expect("magnitude is non-zero");
    if top <= 52 {
        // Fits in the subnormal/smallest-normal ladder exactly: integers
        // below 2^53 map to `bits × 2^-1074` verbatim.
        return f64::from_bits(limbs[0] & ((1u64 << (top + 1)) - 1));
    }
    let shift = top - 52;
    // The 53 bits ending at `top`.
    let mut mantissa = extract_bits(limbs, shift, 53);
    // Round to nearest, ties to even, on the bits below `shift`.
    let round = limb_bit(limbs, shift - 1);
    let sticky = (0..shift - 1).any(|i| limb_bit(limbs, i));
    if round && (sticky || mantissa & 1 == 1) {
        mantissa += 1;
    }
    let mut exponent_field = shift as u64 + 1;
    if mantissa == 1u64 << 53 {
        mantissa >>= 1;
        exponent_field += 1;
    }
    if exponent_field >= 0x7ff {
        return f64::INFINITY;
    }
    f64::from_bits((exponent_field << 52) | (mantissa & ((1u64 << 52) - 1)))
}

/// The `width` bits of the magnitude starting at bit `shift` (width ≤ 64).
fn extract_bits(limbs: &[u64; LIMBS], shift: usize, width: usize) -> u64 {
    let limb = shift / 64;
    let offset = shift % 64;
    let mut bits = limbs[limb] >> offset;
    if offset != 0 && limb + 1 < LIMBS {
        bits |= limbs[limb + 1] << (64 - offset);
    }
    if width < 64 {
        bits &= (1u64 << width) - 1;
    }
    bits
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

/// A mergeable quantile sketch over fixed, data-independent buckets.
///
/// Each value is bucketed by its sign, exponent and top
/// [`MANTISSA_BITS`](QuantileSketch::MANTISSA_BITS) mantissa bits (the
/// IEEE-754 total order, chopped).  Because buckets are fixed a priori, merge
/// is plain bucket-count addition — exactly associative and commutative, so a
/// sketch built from shards is bit-identical to one built monolithically, in
/// any merge order.  This is the property that lets `fleet_shard` prove
/// sharded == monolithic byte-for-byte; a classic t-digest cannot offer it,
/// because centroid re-compression makes the state depend on the merge tree.
///
/// [`percentile`](QuantileSketch::percentile) answers with the toward-zero
/// (magnitude-truncated) end of the bucket holding the nearest-rank element:
/// the answer is exact for values with ≤ 12 significant mantissa bits and
/// otherwise off the true order statistic — toward zero — by less than one
/// part in 2^12 (≈ 0.025%).
///
/// NaN values are counted separately and ordered after every number (the
/// common positive-NaN convention of `f64::total_cmp`); a sketch holding only
/// NaN reports NaN percentiles.
///
/// # Examples
///
/// ```
/// use adasense::shard::QuantileSketch;
///
/// let mut left = QuantileSketch::new();
/// let mut right = QuantileSketch::new();
/// for v in [1.0, 2.0] {
///     left.insert(v);
/// }
/// for v in [3.0, 4.0] {
///     right.insert(v);
/// }
/// let mut merged = left.clone();
/// merged.merge(&right);
///
/// let mut monolithic = QuantileSketch::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     monolithic.insert(v);
/// }
/// assert_eq!(merged, monolithic);
/// assert_eq!(merged.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    /// Bucket key (chopped total-order bit pattern) → count.
    buckets: BTreeMap<u64, u64>,
    /// Number of non-NaN values inserted.
    count: u64,
    /// Number of NaN values inserted.
    nan: u64,
}

impl QuantileSketch {
    /// Mantissa bits kept when bucketing: 2^12 buckets per binade, relative
    /// quantile error below 2^-12.
    pub const MANTISSA_BITS: u32 = 12;

    /// Low mantissa bits chopped off the total-order key.
    const SHIFT: u32 = 52 - Self::MANTISSA_BITS;

    /// An empty sketch (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values inserted (NaN included).
    pub fn len(&self) -> u64 {
        self.count + self.nan
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of occupied buckets (the memory bound: at most one per distinct
    /// sign × exponent × top-12-mantissa pattern in the data, never more than
    /// the number of inserted values).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Inserts one value.
    pub fn insert(&mut self, value: f64) {
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        let key = total_order_key(value) >> Self::SHIFT;
        *self.buckets.entry(key).or_insert(0) += 1;
        self.count += 1;
    }

    /// Merges another sketch into this one (bucket-count addition: exactly
    /// associative and commutative, with the empty sketch as identity).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (key, n) in &other.buckets {
            *self.buckets.entry(*key).or_insert(0) += n;
        }
        self.count += other.count;
        self.nan += other.nan;
    }

    /// The `p`-th percentile (nearest-rank, `0 < p <= 100`), answered as the
    /// magnitude-truncated representative of the bucket holding the
    /// nearest-rank element.  [`f64::NAN`] for an empty sketch, and NaN when
    /// the nearest-rank element is one of the NaN inputs (they order last).
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.len();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        if rank > self.count {
            return f64::NAN; // inside the trailing NaN block
        }
        let mut seen = 0u64;
        for (key, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_value(*key);
            }
        }
        unreachable!("rank <= count implies some bucket reaches it")
    }

    /// Writes the canonical binary form into `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.nan.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u64).to_le_bytes());
        for (key, n) in &self.buckets {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }

    /// Reads the canonical binary form written by `encode_into`.
    fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, AdaSenseError> {
        let count = cursor.u64()?;
        let nan = cursor.u64()?;
        let buckets = cursor.u64()?;
        let mut sketch = Self { buckets: BTreeMap::new(), count, nan };
        let mut total = 0u64;
        for _ in 0..buckets {
            let key = cursor.u64()?;
            let n = cursor.u64()?;
            if n == 0 || sketch.buckets.insert(key, n).is_some() {
                return Err(AdaSenseError::shard("sketch encoding is not canonical"));
            }
            total += n;
        }
        if total != count {
            return Err(AdaSenseError::shard(format!(
                "sketch bucket counts sum to {total}, header claims {count}"
            )));
        }
        Ok(sketch)
    }
}

/// Maps `f64` bits to a key whose unsigned order equals `f64::total_cmp`
/// order (sign-magnitude → biased).
fn total_order_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1u64 << 63)
    }
}

/// Inverse of [`total_order_key`].
fn from_total_order_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1u64 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// The representative value of a chopped bucket key: the magnitude-truncated
/// (toward-zero) end of the bucket, so every value whose mantissa fits in
/// [`QuantileSketch::MANTISSA_BITS`] represents itself exactly, positive or
/// negative.  For positive buckets that end has the chopped low key bits zero;
/// for negative buckets the total-order key is bit-complemented, so the
/// toward-zero end has them one.
fn bucket_value(chopped: u64) -> f64 {
    let negative = (chopped >> (63 - QuantileSketch::SHIFT)) & 1 == 0;
    let key = chopped << QuantileSketch::SHIFT;
    let key = if negative { key | ((1u64 << QuantileSketch::SHIFT) - 1) } else { key };
    from_total_order_key(key)
}

// ---------------------------------------------------------------------------
// Metric and group statistics
// ---------------------------------------------------------------------------

/// One population metric: an exact sum (for the mean) plus a quantile sketch
/// (for percentiles).  Both halves are order-independent, so the whole stat
/// merges bit-deterministically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricStat {
    /// Number of observed values.
    pub count: u64,
    /// Exact sum of the observed values.
    pub sum: ExactSum,
    /// Quantile sketch of the observed values.
    pub sketch: QuantileSketch,
}

impl MetricStat {
    /// Observes one value.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum.add(value);
        self.sketch.insert(value);
    }

    /// Merges another stat into this one.
    pub fn merge(&mut self, other: &MetricStat) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sketch.merge(&other.sketch);
    }

    /// Mean of the observed values ([`f64::NAN`] when empty — a fabricated 0
    /// would read as a real figure).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum.value() / self.count as f64
        }
    }

    /// Nearest-rank percentile (see [`QuantileSketch::percentile`]).
    pub fn percentile(&self, p: f64) -> f64 {
        self.sketch.percentile(p)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        self.sum.encode_into(out);
        self.sketch.encode_into(out);
    }

    fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, AdaSenseError> {
        Ok(Self {
            count: cursor.u64()?,
            sum: ExactSum::decode_from(cursor)?,
            sketch: QuantileSketch::decode_from(cursor)?,
        })
    }
}

/// Mergeable statistics of one device group (a routine or a backend).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupStat {
    /// Number of devices in the group.
    pub devices: u64,
    /// Total classified epochs of the group.
    pub epochs: u64,
    /// Exact sum of per-device accuracy.
    pub accuracy: ExactSum,
    /// Exact sum of per-device average current (µA).
    pub current_ua: ExactSum,
    /// Exact sum of per-device fault-exposed epoch fractions.
    pub faulted_fraction: ExactSum,
}

impl GroupStat {
    /// Folds one device into the group.
    fn observe(&mut self, device: &DeviceSummary) {
        self.devices += 1;
        self.epochs += device.epochs as u64;
        self.accuracy.add(device.accuracy);
        self.current_ua.add(device.average_current_ua);
        self.faulted_fraction.add(device.faulted_fraction());
    }

    /// Merges another group into this one.
    fn merge(&mut self, other: &GroupStat) {
        self.devices += other.devices;
        self.epochs += other.epochs;
        self.accuracy.merge(&other.accuracy);
        self.current_ua.merge(&other.current_ua);
        self.faulted_fraction.merge(&other.faulted_fraction);
    }

    /// Mean of an exact sum over the group's devices (NaN when empty).
    pub fn mean_of(&self, sum: &ExactSum) -> f64 {
        if self.devices == 0 {
            f64::NAN
        } else {
            sum.value() / self.devices as f64
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.devices.to_le_bytes());
        out.extend_from_slice(&self.epochs.to_le_bytes());
        self.accuracy.encode_into(out);
        self.current_ua.encode_into(out);
        self.faulted_fraction.encode_into(out);
    }

    fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, AdaSenseError> {
        Ok(Self {
            devices: cursor.u64()?,
            epochs: cursor.u64()?,
            accuracy: ExactSum::decode_from(cursor)?,
            current_ua: ExactSum::decode_from(cursor)?,
            faulted_fraction: ExactSum::decode_from(cursor)?,
        })
    }
}

// ---------------------------------------------------------------------------
// FleetStats
// ---------------------------------------------------------------------------

/// Magic bytes opening an encoded fleet-report aggregate.
pub const REPORT_MAGIC: [u8; 4] = *b"ADSR";
/// Version of the report encoding this build writes and accepts.
/// Version 2 added the cascade early-exit/escalation counters; version 3
/// added the per-policy transmission counters; version 4 added the fleet
/// churn counters (joined/departed totals and the lifetime timeline behind
/// [`FleetStats::active_peak`]).
pub const REPORT_VERSION: u16 = 4;

/// The complete mergeable state of a fleet report: everything
/// [`FleetReport`](crate::fleet::FleetReport) can answer, in memory bounded
/// by the *diversity* of the population (routines × backends × sketch
/// buckets), never by its size.
///
/// Every field is order-independent under [`observe`](FleetStats::observe)
/// and [`merge`](FleetStats::merge), so shard aggregates combine into exactly
/// the monolithic aggregate (see the module docs for the canonical — but not
/// required — ascending merge order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetStats {
    /// Number of devices observed.
    pub devices: u64,
    /// Total classified epochs.
    pub epochs: u64,
    /// Total correctly classified epochs.
    pub correct_epochs: u64,
    /// Total fault-exposed classified epochs.
    pub faulted_epochs: u64,
    /// Total epochs cascade backends answered at their cheap first stage
    /// (0 when no device ran a cascade).
    pub early_exit_epochs: u64,
    /// Early-exit epochs classified correctly.
    pub early_exit_correct: u64,
    /// Total epochs cascade backends escalated to their full second stage.
    pub escalated_epochs: u64,
    /// Escalated epochs classified correctly.
    pub escalated_correct: u64,
    /// Devices that joined the cohort after fleet epoch 0 (late joiners).
    pub joined: u64,
    /// Devices that departed before draining their full stream (early
    /// departures finalized at their last completed epoch).
    pub departed: u64,
    /// Net cohort-size change at each fleet epoch: `+1` where a device's
    /// lifetime starts, `-1` one past where it ends.  Pointwise-additive, so
    /// shard merges stay associative; [`active_peak`](FleetStats::active_peak)
    /// folds it into the peak concurrent cohort size.
    pub lifetimes: BTreeMap<u64, i64>,
    /// Total classified epochs transmitted under each [`TxPolicy`], indexed
    /// by [`TxPolicy::index`] (all zero when transmission modelling is off).
    pub tx_epochs: [u64; TxPolicy::COUNT],
    /// Total payload bytes transmitted under each policy.
    pub tx_bytes: [u64; TxPolicy::COUNT],
    /// Exact total radio charge spent under each policy, µC.
    pub tx_charge_uc: [ExactSum; TxPolicy::COUNT],
    /// Exact total simulated duration, seconds.
    pub duration_s: ExactSum,
    /// Exact total sensor charge, µC.
    pub charge_uc: ExactSum,
    /// Per-device accuracy (0–1).
    pub accuracy: MetricStat,
    /// Per-device average current, µA.
    pub current_ua: MetricStat,
    /// Per-device fault-exposed epoch fraction (0–1).
    pub faulted_fraction: MetricStat,
    /// Per-device residency fraction, one stat per configuration, indexed by
    /// [`SensorConfig::index`].
    pub residency: Vec<MetricStat>,
    /// Per-routine groups, keyed by routine label.
    pub routines: BTreeMap<String, GroupStat>,
    /// Per-backend groups, keyed by backend label.
    pub backends: BTreeMap<String, GroupStat>,
}

impl FleetStats {
    /// An empty aggregate (the merge identity).
    pub fn new() -> Self {
        Self {
            residency: (0..SensorConfig::COUNT).map(|_| MetricStat::default()).collect(),
            ..Self::default()
        }
    }

    /// Folds one completed device into the aggregate.
    pub fn observe(&mut self, device: &DeviceSummary) {
        self.devices += 1;
        self.epochs += device.epochs as u64;
        self.correct_epochs += device.correct_epochs as u64;
        self.faulted_epochs += device.faulted_epochs as u64;
        self.early_exit_epochs += device.early_exit_epochs as u64;
        self.early_exit_correct += device.early_exit_correct as u64;
        self.escalated_epochs += device.escalated_epochs as u64;
        self.escalated_correct += device.escalated_correct as u64;
        self.joined += u64::from(device.start_epoch > 0);
        self.departed += u64::from(device.departed);
        *self.lifetimes.entry(device.start_epoch).or_insert(0) += 1;
        *self.lifetimes.entry(device.start_epoch + device.epochs as u64).or_insert(0) -= 1;
        for index in 0..TxPolicy::COUNT {
            self.tx_epochs[index] += device.tx_epochs.get(index).copied().unwrap_or(0);
            self.tx_bytes[index] += device.tx_bytes.get(index).copied().unwrap_or(0);
            self.tx_charge_uc[index].add(device.tx_charge_uc.get(index).copied().unwrap_or(0.0));
        }
        self.duration_s.add(device.duration_s);
        self.charge_uc.add(device.total_charge_uc);
        self.accuracy.observe(device.accuracy);
        self.current_ua.observe(device.average_current_ua);
        self.faulted_fraction.observe(device.faulted_fraction());
        for (index, stat) in self.residency.iter_mut().enumerate() {
            let config = SensorConfig::from_index(index).expect("index < COUNT");
            stat.observe(device.residency_fraction(config));
        }
        self.routines.entry(device.routine.clone()).or_default().observe(device);
        self.backends.entry(device.backend.clone()).or_default().observe(device);
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &FleetStats) {
        self.devices += other.devices;
        self.epochs += other.epochs;
        self.correct_epochs += other.correct_epochs;
        self.faulted_epochs += other.faulted_epochs;
        self.early_exit_epochs += other.early_exit_epochs;
        self.early_exit_correct += other.early_exit_correct;
        self.escalated_epochs += other.escalated_epochs;
        self.escalated_correct += other.escalated_correct;
        self.joined += other.joined;
        self.departed += other.departed;
        for (&epoch, &delta) in &other.lifetimes {
            *self.lifetimes.entry(epoch).or_insert(0) += delta;
        }
        for index in 0..TxPolicy::COUNT {
            self.tx_epochs[index] += other.tx_epochs[index];
            self.tx_bytes[index] += other.tx_bytes[index];
            self.tx_charge_uc[index].merge(&other.tx_charge_uc[index]);
        }
        self.duration_s.merge(&other.duration_s);
        self.charge_uc.merge(&other.charge_uc);
        self.accuracy.merge(&other.accuracy);
        self.current_ua.merge(&other.current_ua);
        self.faulted_fraction.merge(&other.faulted_fraction);
        for (mine, theirs) in self.residency.iter_mut().zip(&other.residency) {
            mine.merge(theirs);
        }
        for (label, group) in &other.routines {
            self.routines.entry(label.clone()).or_default().merge(group);
        }
        for (label, group) in &other.backends {
            self.backends.entry(label.clone()).or_default().merge(group);
        }
    }

    /// Peak number of devices whose lifetimes overlapped at any fleet epoch.
    ///
    /// A running prefix sum over the [`lifetimes`](FleetStats::lifetimes)
    /// timeline: the answer is the same whether the rows arrived monolithic
    /// or were merged from shards, because the timeline itself is.
    pub fn active_peak(&self) -> u64 {
        let mut active = 0i64;
        let mut peak = 0i64;
        for delta in self.lifetimes.values() {
            active += delta;
            peak = peak.max(active);
        }
        peak.max(0) as u64
    }

    /// Writes the canonical binary form into `out` (no magic/version — the
    /// caller frames it; [`crate::fleet::FleetReport::encode`] is the framed
    /// entry point).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.devices.to_le_bytes());
        out.extend_from_slice(&self.epochs.to_le_bytes());
        out.extend_from_slice(&self.correct_epochs.to_le_bytes());
        out.extend_from_slice(&self.faulted_epochs.to_le_bytes());
        out.extend_from_slice(&self.early_exit_epochs.to_le_bytes());
        out.extend_from_slice(&self.early_exit_correct.to_le_bytes());
        out.extend_from_slice(&self.escalated_epochs.to_le_bytes());
        out.extend_from_slice(&self.escalated_correct.to_le_bytes());
        out.extend_from_slice(&self.joined.to_le_bytes());
        out.extend_from_slice(&self.departed.to_le_bytes());
        out.extend_from_slice(&(self.lifetimes.len() as u64).to_le_bytes());
        for (&epoch, &delta) in &self.lifetimes {
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&delta.to_le_bytes());
        }
        for index in 0..TxPolicy::COUNT {
            out.extend_from_slice(&self.tx_epochs[index].to_le_bytes());
            out.extend_from_slice(&self.tx_bytes[index].to_le_bytes());
            self.tx_charge_uc[index].encode_into(out);
        }
        self.duration_s.encode_into(out);
        self.charge_uc.encode_into(out);
        self.accuracy.encode_into(out);
        self.current_ua.encode_into(out);
        self.faulted_fraction.encode_into(out);
        out.extend_from_slice(&(self.residency.len() as u64).to_le_bytes());
        for stat in &self.residency {
            stat.encode_into(out);
        }
        encode_groups(out, &self.routines);
        encode_groups(out, &self.backends);
    }

    /// Reads the canonical binary form written by
    /// [`encode_into`](FleetStats::encode_into).
    pub fn decode_from(cursor: &mut ByteCursor<'_>) -> Result<Self, AdaSenseError> {
        let devices = cursor.u64()?;
        let epochs = cursor.u64()?;
        let correct_epochs = cursor.u64()?;
        let faulted_epochs = cursor.u64()?;
        let early_exit_epochs = cursor.u64()?;
        let early_exit_correct = cursor.u64()?;
        let escalated_epochs = cursor.u64()?;
        let escalated_correct = cursor.u64()?;
        let joined = cursor.u64()?;
        let departed = cursor.u64()?;
        let lifetimes_len = cursor.u64()? as usize;
        let mut lifetimes = BTreeMap::new();
        for _ in 0..lifetimes_len {
            let epoch = cursor.u64()?;
            let delta = cursor.u64()? as i64;
            if lifetimes.insert(epoch, delta).is_some() {
                return Err(AdaSenseError::shard("duplicate lifetime epoch in report encoding"));
            }
        }
        let mut tx_epochs = [0u64; TxPolicy::COUNT];
        let mut tx_bytes = [0u64; TxPolicy::COUNT];
        let mut tx_charge_uc: [ExactSum; TxPolicy::COUNT] = Default::default();
        for index in 0..TxPolicy::COUNT {
            tx_epochs[index] = cursor.u64()?;
            tx_bytes[index] = cursor.u64()?;
            tx_charge_uc[index] = ExactSum::decode_from(cursor)?;
        }
        let duration_s = ExactSum::decode_from(cursor)?;
        let charge_uc = ExactSum::decode_from(cursor)?;
        let accuracy = MetricStat::decode_from(cursor)?;
        let current_ua = MetricStat::decode_from(cursor)?;
        let faulted_fraction = MetricStat::decode_from(cursor)?;
        let residency_len = cursor.u64()? as usize;
        if residency_len != SensorConfig::COUNT {
            return Err(AdaSenseError::shard(format!(
                "report carries {residency_len} residency stats, this build has {} configurations",
                SensorConfig::COUNT
            )));
        }
        let mut residency = Vec::with_capacity(residency_len);
        for _ in 0..residency_len {
            residency.push(MetricStat::decode_from(cursor)?);
        }
        let routines = decode_groups(cursor)?;
        let backends = decode_groups(cursor)?;
        Ok(Self {
            devices,
            epochs,
            correct_epochs,
            faulted_epochs,
            early_exit_epochs,
            early_exit_correct,
            escalated_epochs,
            escalated_correct,
            joined,
            departed,
            lifetimes,
            tx_epochs,
            tx_bytes,
            tx_charge_uc,
            duration_s,
            charge_uc,
            accuracy,
            current_ua,
            faulted_fraction,
            residency,
            routines,
            backends,
        })
    }
}

fn encode_groups(out: &mut Vec<u8>, groups: &BTreeMap<String, GroupStat>) {
    out.extend_from_slice(&(groups.len() as u64).to_le_bytes());
    for (label, group) in groups {
        encode_str(out, label);
        group.encode_into(out);
    }
}

fn decode_groups(
    cursor: &mut ByteCursor<'_>,
) -> Result<BTreeMap<String, GroupStat>, AdaSenseError> {
    let len = cursor.u64()?;
    let mut groups = BTreeMap::new();
    for _ in 0..len {
        let label = decode_str(cursor)?;
        let group = GroupStat::decode_from(cursor)?;
        if groups.insert(label, group).is_some() {
            return Err(AdaSenseError::shard("duplicate group label in report encoding"));
        }
    }
    Ok(groups)
}

// ---------------------------------------------------------------------------
// Shard ranges
// ---------------------------------------------------------------------------

/// A contiguous device-id range `[start, end)` of one shard.
///
/// Produced by [`FleetSpec::shards`](crate::fleet::FleetSpec::shards), which
/// aligns boundaries to lockstep-chunk multiples so a shard schedules exactly
/// the chunks the monolithic run would — per-device results are independent
/// of chunking anyway (the batch path is contractually bit-identical per
/// row), but aligned shards also keep scheduling transcripts comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First device id of the shard.
    pub start: u64,
    /// One past the last device id of the shard.
    pub end: u64,
}

impl ShardRange {
    /// The whole-fleet range of a monolithic run over `devices` devices.
    pub fn whole(devices: u64) -> Self {
        Self { start: 0, end: devices }
    }

    /// Number of devices in the shard.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the shard holds no devices (an empty shard merges as the
    /// identity).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl std::fmt::Display for ShardRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Splits the chunk grid of `devices` devices (chunks of `lockstep` ids) into
/// `shards` contiguous, chunk-aligned, maximally balanced ranges.  Trailing
/// shards may be empty when there are fewer chunks than shards.
pub(crate) fn shard_ranges(devices: u64, lockstep: u64, shards: usize) -> Vec<ShardRange> {
    let shards = shards.max(1) as u64;
    let chunks = devices.div_ceil(lockstep.max(1));
    let per_shard = chunks / shards;
    let remainder = chunks % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut chunk = 0u64;
    for shard in 0..shards {
        let take = per_shard + u64::from(shard < remainder);
        let start = (chunk * lockstep).min(devices);
        let end = ((chunk + take) * lockstep).min(devices);
        ranges.push(ShardRange { start, end });
        chunk += take;
    }
    ranges
}

// ---------------------------------------------------------------------------
// Summary sinks and the on-disk spool
// ---------------------------------------------------------------------------

/// Receives completed [`DeviceSummary`] rows as lockstep chunks finish.
///
/// Rows arrive grouped by chunk but in chunk-**completion** order, which
/// depends on worker scheduling; consumers must not rely on row order (sort
/// by `device_id` when order matters).  The mergeable
/// [`FleetReport`](crate::fleet::FleetReport) is deliberately insensitive to
/// this: its state is identical for any arrival order.
pub trait SummarySink: Send {
    /// Accepts one completed device row.
    ///
    /// # Errors
    ///
    /// Any error aborts the fleet run and is propagated to the caller.
    fn push(&mut self, row: &DeviceSummary) -> Result<(), AdaSenseError>;
}

/// A sink that drops every row — the bounded-memory default when only the
/// aggregate report is wanted.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardSink;

impl SummarySink for DiscardSink {
    fn push(&mut self, _row: &DeviceSummary) -> Result<(), AdaSenseError> {
        Ok(())
    }
}

impl SummarySink for Vec<DeviceSummary> {
    /// Collects rows in arrival (chunk-completion) order.
    fn push(&mut self, row: &DeviceSummary) -> Result<(), AdaSenseError> {
        self.push(row.clone());
        Ok(())
    }
}

/// Magic bytes opening a device-summary spool.
pub const SPOOL_MAGIC: [u8; 4] = *b"ADSP";
/// Version of the spool encoding this build writes and accepts.
/// Version 2 added the per-row cascade early-exit/escalation counters;
/// version 3 added the per-policy transmission counters; version 4 added the
/// per-row churn lifetime (start epoch + departed flag).
pub const SPOOL_VERSION: u16 = 4;

/// Frame-kind tag of one spooled row.
const SPOOL_KIND_ROW: u8 = 0x01;
/// Frame-kind tag of the spool end marker.
const SPOOL_KIND_END: u8 = 0x02;
/// Upper bound on one spool frame (a row is ~150 bytes; the cap rejects
/// corrupt length prefixes before any allocation).
const SPOOL_MAX_FRAME: usize = 1 << 16;

/// Streams completed [`DeviceSummary`] rows to a writer as compact
/// length-prefixed binary frames, so a shard's per-device detail lands on
/// disk instead of accumulating in RAM (layout in `docs/WIRE_FORMAT.md`).
///
/// Call [`finish`](SpoolWriter::finish) when the run completes — a spool
/// without its end marker is treated as torn by [`SpoolReader`], exactly like
/// a truncated telemetry stream.
///
/// # Examples
///
/// ```
/// use adasense::shard::{SpoolReader, SpoolWriter};
///
/// let mut bytes = Vec::new();
/// let writer = SpoolWriter::new(&mut bytes).unwrap();
/// // … push completed rows during the run …
/// writer.finish().unwrap();
/// let rows: Vec<_> = SpoolReader::new(&bytes[..])
///     .unwrap()
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap();
/// assert!(rows.is_empty());
/// ```
#[derive(Debug)]
pub struct SpoolWriter<W: Write> {
    writer: W,
    buf: Vec<u8>,
    rows: u64,
}

impl<W: Write> SpoolWriter<W> {
    /// Wraps `writer` and writes the spool header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Shard`] when the writer fails.
    pub fn new(mut writer: W) -> Result<Self, AdaSenseError> {
        let mut head = Vec::with_capacity(8);
        head.extend_from_slice(&SPOOL_MAGIC);
        head.extend_from_slice(&SPOOL_VERSION.to_le_bytes());
        head.extend_from_slice(&0u16.to_le_bytes());
        writer.write_all(&head).map_err(spool_io)?;
        Ok(Self { writer, buf: Vec::new(), rows: 0 })
    }

    /// Number of rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Writes the end marker (carrying the row count as an integrity check)
    /// and flushes, returning the inner writer.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Shard`] when the writer fails.
    pub fn finish(mut self) -> Result<W, AdaSenseError> {
        self.buf.clear();
        self.buf.extend_from_slice(&9u32.to_le_bytes());
        self.buf.push(SPOOL_KIND_END);
        self.buf.extend_from_slice(&self.rows.to_le_bytes());
        self.writer.write_all(&self.buf).map_err(spool_io)?;
        self.writer.flush().map_err(spool_io)?;
        Ok(self.writer)
    }
}

impl<W: Write + Send> SummarySink for SpoolWriter<W> {
    fn push(&mut self, row: &DeviceSummary) -> Result<(), AdaSenseError> {
        self.buf.clear();
        self.buf.extend_from_slice(&0u32.to_le_bytes()); // length, patched below
        self.buf.push(SPOOL_KIND_ROW);
        self.buf.extend_from_slice(&row.device_id.to_le_bytes());
        self.buf.extend_from_slice(&row.seed.to_le_bytes());
        encode_str(&mut self.buf, &row.routine);
        encode_str(&mut self.buf, &row.backend);
        self.buf.extend_from_slice(&(row.faulted_epochs as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.epochs as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.correct_epochs as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.early_exit_epochs as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.early_exit_correct as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.escalated_epochs as u64).to_le_bytes());
        self.buf.extend_from_slice(&(row.escalated_correct as u64).to_le_bytes());
        self.buf.extend_from_slice(&row.accuracy.to_le_bytes());
        self.buf.extend_from_slice(&row.average_current_ua.to_le_bytes());
        self.buf.extend_from_slice(&row.total_charge_uc.to_le_bytes());
        self.buf.extend_from_slice(&row.duration_s.to_le_bytes());
        self.buf.extend_from_slice(&(row.residency_s.len() as u16).to_le_bytes());
        for seconds in &row.residency_s {
            self.buf.extend_from_slice(&seconds.to_le_bytes());
        }
        self.buf.extend_from_slice(&(row.tx_epochs.len() as u16).to_le_bytes());
        for index in 0..row.tx_epochs.len() {
            self.buf.extend_from_slice(&row.tx_epochs[index].to_le_bytes());
            self.buf
                .extend_from_slice(&row.tx_bytes.get(index).copied().unwrap_or(0).to_le_bytes());
            self.buf.extend_from_slice(
                &row.tx_charge_uc.get(index).copied().unwrap_or(0.0).to_le_bytes(),
            );
        }
        self.buf.extend_from_slice(&row.start_epoch.to_le_bytes());
        self.buf.push(u8::from(row.departed));
        let payload_len = self.buf.len() - 4;
        assert!(payload_len <= SPOOL_MAX_FRAME, "spool row exceeds the frame cap");
        self.buf[0..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        self.writer.write_all(&self.buf).map_err(spool_io)?;
        self.rows += 1;
        Ok(())
    }
}

/// Reads a spool back as an iterator of [`DeviceSummary`] rows, validating
/// the header, every frame and the end marker's row count.
#[derive(Debug)]
pub struct SpoolReader<R: Read> {
    reader: R,
    payload: Vec<u8>,
    rows: u64,
    done: bool,
}

impl<R: Read> SpoolReader<R> {
    /// Wraps `reader` and validates the spool header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Shard`] on bad magic, an unsupported version
    /// or a truncated header.
    pub fn new(mut reader: R) -> Result<Self, AdaSenseError> {
        let mut head = [0u8; 8];
        reader
            .read_exact(&mut head)
            .map_err(|e| AdaSenseError::shard(format!("spool ended inside the header: {e}")))?;
        if head[0..4] != SPOOL_MAGIC {
            return Err(AdaSenseError::shard(format!(
                "bad spool magic {:02x?} (expected `ADSP`)",
                &head[0..4]
            )));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != SPOOL_VERSION {
            return Err(AdaSenseError::shard(format!(
                "unsupported spool version {version} (this build speaks {SPOOL_VERSION})"
            )));
        }
        Ok(Self { reader, payload: Vec::new(), rows: 0, done: false })
    }

    /// Reads the next row, `Ok(None)` after a valid end marker.
    fn read_row(&mut self) -> Result<Option<DeviceSummary>, AdaSenseError> {
        let mut len_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut len_bytes)
            .map_err(|e| AdaSenseError::shard(format!("spool ended inside a frame: {e}")))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 || len > SPOOL_MAX_FRAME {
            return Err(AdaSenseError::shard(format!(
                "spool frame length {len} is outside 1..={SPOOL_MAX_FRAME}"
            )));
        }
        self.payload.resize(len, 0);
        self.reader
            .read_exact(&mut self.payload)
            .map_err(|e| AdaSenseError::shard(format!("spool ended inside a frame: {e}")))?;
        match self.payload[0] {
            SPOOL_KIND_ROW => {
                let mut cursor = ByteCursor::new(&self.payload[1..]);
                let row = decode_summary(&mut cursor)?;
                cursor.finish()?;
                self.rows += 1;
                Ok(Some(row))
            }
            SPOOL_KIND_END => {
                if len != 9 {
                    return Err(AdaSenseError::shard("spool end marker has the wrong length"));
                }
                let claimed =
                    u64::from_le_bytes(self.payload[1..9].try_into().expect("8-byte slice"));
                if claimed != self.rows {
                    return Err(AdaSenseError::shard(format!(
                        "spool end marker claims {claimed} rows, read {}",
                        self.rows
                    )));
                }
                self.done = true;
                Ok(None)
            }
            kind => Err(AdaSenseError::shard(format!("unknown spool frame kind {kind:#04x}"))),
        }
    }
}

impl<R: Read> Iterator for SpoolReader<R> {
    type Item = Result<DeviceSummary, AdaSenseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_row() {
            Ok(Some(row)) => Some(Ok(row)),
            Ok(None) => None,
            Err(error) => {
                self.done = true;
                Some(Err(error))
            }
        }
    }
}

fn decode_summary(cursor: &mut ByteCursor<'_>) -> Result<DeviceSummary, AdaSenseError> {
    let device_id = cursor.u64()?;
    let seed = cursor.u64()?;
    let routine = decode_str(cursor)?;
    let backend = decode_str(cursor)?;
    let faulted_epochs = cursor.u64()? as usize;
    let epochs = cursor.u64()? as usize;
    let correct_epochs = cursor.u64()? as usize;
    let early_exit_epochs = cursor.u64()? as usize;
    let early_exit_correct = cursor.u64()? as usize;
    let escalated_epochs = cursor.u64()? as usize;
    let escalated_correct = cursor.u64()? as usize;
    let accuracy = cursor.f64()?;
    let average_current_ua = cursor.f64()?;
    let total_charge_uc = cursor.f64()?;
    let duration_s = cursor.f64()?;
    let residency_len = cursor.u16()? as usize;
    if residency_len > SensorConfig::COUNT {
        return Err(AdaSenseError::shard(format!(
            "spooled row carries {residency_len} residency entries, this build has {}",
            SensorConfig::COUNT
        )));
    }
    let mut residency_s = Vec::with_capacity(residency_len);
    for _ in 0..residency_len {
        residency_s.push(cursor.f64()?);
    }
    let tx_len = cursor.u16()? as usize;
    if tx_len > TxPolicy::COUNT {
        return Err(AdaSenseError::shard(format!(
            "spooled row carries {tx_len} transmission entries, this build has {}",
            TxPolicy::COUNT
        )));
    }
    let mut tx_epochs = Vec::with_capacity(tx_len);
    let mut tx_bytes = Vec::with_capacity(tx_len);
    let mut tx_charge_uc = Vec::with_capacity(tx_len);
    for _ in 0..tx_len {
        tx_epochs.push(cursor.u64()?);
        tx_bytes.push(cursor.u64()?);
        tx_charge_uc.push(cursor.f64()?);
    }
    let start_epoch = cursor.u64()?;
    let departed = match cursor.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(AdaSenseError::shard(format!(
                "spooled row carries departed flag {tag}, expected 0 or 1"
            )));
        }
    };
    Ok(DeviceSummary {
        device_id,
        seed,
        routine,
        backend,
        faulted_epochs,
        epochs,
        correct_epochs,
        early_exit_epochs,
        early_exit_correct,
        escalated_epochs,
        escalated_correct,
        accuracy,
        average_current_ua,
        total_charge_uc,
        duration_s,
        residency_s,
        tx_epochs,
        tx_bytes,
        tx_charge_uc,
        start_epoch,
        departed,
    })
}

fn spool_io(error: std::io::Error) -> AdaSenseError {
    AdaSenseError::shard(format!("writing the summary spool failed: {error}"))
}

// ---------------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteCursor<'a> {
    bytes: &'a [u8],
}

impl<'a> ByteCursor<'a> {
    /// Wraps `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], AdaSenseError> {
        if self.bytes.len() < n {
            return Err(AdaSenseError::shard(format!(
                "encoding truncated: needed {n} bytes, {} left",
                self.bytes.len()
            )));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, AdaSenseError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, AdaSenseError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, AdaSenseError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads one little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, AdaSenseError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), AdaSenseError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(AdaSenseError::shard(format!(
                "{} trailing bytes after the encoded value",
                self.bytes.len()
            )))
        }
    }
}

/// Writes a `u16`-length-prefixed UTF-8 string.
pub(crate) fn encode_str(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "label longer than a spool string frame");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Reads a `u16`-length-prefixed UTF-8 string.
pub(crate) fn decode_str(cursor: &mut ByteCursor<'_>) -> Result<String, AdaSenseError> {
    let len = cursor.u16()? as usize;
    let bytes = cursor.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| AdaSenseError::shard("label is not valid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of(values: &[f64]) -> ExactSum {
        let mut sum = ExactSum::new();
        for &v in values {
            sum.add(v);
        }
        sum
    }

    #[test]
    fn exact_sum_matches_float_addition_on_single_values() {
        for v in [0.0, 1.0, -1.0, 0.1, 1e-308, 5e-324, 1e300, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(sum_of(&[v]).value().to_bits(), v.to_bits(), "round-trip of {v:e}");
        }
        // The sign of zero is not tracked: a zero sum is always +0.0.
        assert_eq!(sum_of(&[-0.0]).value().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn exact_sum_of_two_values_is_the_correctly_rounded_float_sum() {
        // A single float addition is correctly rounded, so for two addends the
        // exact accumulator must agree with it bit for bit.
        let pairs = [
            (0.1, 0.2),
            (1e16, 1.0),
            (1e300, 1e284),
            (5e-324, 5e-324),
            (1.0, f64::EPSILON / 2.0),
            (1.5, 2.5),
        ];
        for (a, b) in pairs {
            assert_eq!(sum_of(&[a, b]).value(), a + b, "{a:e} + {b:e}");
        }
    }

    #[test]
    fn exact_sum_survives_catastrophic_cancellation() {
        // Float left-to-right: (1e100 + 1) - 1e100 = 0.  Exact: 1.
        assert_eq!(sum_of(&[1e100, 1.0, -1e100]).value(), 1.0);
        assert_eq!(sum_of(&[1e100, -1e100]).value(), 0.0);
    }

    #[test]
    fn exact_sum_state_is_order_independent() {
        let values = [0.1, -7.25, 1e18, 5e-324, 3.5, -0.0, 1e-200, 42.0];
        let forward = sum_of(&values);
        let mut reversed: Vec<f64> = values.to_vec();
        reversed.reverse();
        assert_eq!(forward, sum_of(&reversed));
        // Merging split halves equals the straight pass.
        let mut merged = sum_of(&values[..3]);
        merged.merge(&sum_of(&values[3..]));
        assert_eq!(forward, merged);
        assert_eq!(forward.value(), merged.value());
    }

    #[test]
    fn exact_sum_handles_non_finite_inputs_like_ieee() {
        assert!(sum_of(&[1.0, f64::NAN]).value().is_nan());
        assert_eq!(sum_of(&[1.0, f64::INFINITY]).value(), f64::INFINITY);
        assert_eq!(sum_of(&[f64::NEG_INFINITY, -1.0]).value(), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).value().is_nan());
    }

    #[test]
    fn exact_sum_overflow_saturates_to_infinity() {
        assert_eq!(sum_of(&[f64::MAX, f64::MAX]).value(), f64::INFINITY);
    }

    #[test]
    fn sketch_percentiles_are_nearest_rank_on_exact_buckets() {
        // Values with short mantissas land on bucket lower bounds, so the
        // sketch reproduces the historic exact nearest-rank answers.
        let mut sketch = QuantileSketch::new();
        for v in [3.0, 1.0, 2.0, 4.0] {
            sketch.insert(v);
        }
        assert_eq!(sketch.percentile(50.0), 2.0);
        assert_eq!(sketch.percentile(100.0), 4.0);
        assert_eq!(sketch.percentile(1.0), 1.0);
    }

    #[test]
    fn sketch_percentile_error_is_bounded() {
        let mut sketch = QuantileSketch::new();
        let values: Vec<f64> = (0..1000).map(|i| 0.3 + 0.0007 * i as f64).collect();
        for &v in &values {
            sketch.insert(v);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = sketch.percentile(p);
            assert!(approx <= exact, "bucket lower bound cannot exceed the exact answer");
            assert!(
                (exact - approx) / exact < 1.0 / 4096.0,
                "p{p}: {approx} vs exact {exact} exceeds the 2^-12 relative bound"
            );
        }
    }

    #[test]
    fn sketch_merge_is_commutative_associative_with_identity() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        for v in [0.9, 0.95, f64::NAN] {
            a.insert(v);
        }
        for v in [0.5, 0.55] {
            b.insert(v);
        }
        c.insert(0.7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        let mut with_empty = a.clone();
        with_empty.merge(&QuantileSketch::new());
        assert_eq!(with_empty, a, "the empty sketch must be the merge identity");
    }

    #[test]
    fn sketch_orders_nan_last_and_empty_is_nan() {
        assert!(QuantileSketch::new().percentile(50.0).is_nan());
        let mut sketch = QuantileSketch::new();
        sketch.insert(1.0);
        sketch.insert(f64::NAN);
        assert_eq!(sketch.percentile(50.0), 1.0);
        assert!(sketch.percentile(100.0).is_nan(), "the NaN input orders last");
    }

    #[test]
    fn sketch_handles_negatives_in_value_order() {
        let mut sketch = QuantileSketch::new();
        for v in [-2.0, -1.0, 1.0, 2.0] {
            sketch.insert(v);
        }
        assert_eq!(sketch.percentile(25.0), -2.0);
        assert_eq!(sketch.percentile(50.0), -1.0);
        assert_eq!(sketch.percentile(100.0), 2.0);
    }

    #[test]
    fn shard_ranges_are_aligned_balanced_and_exhaustive() {
        let ranges = shard_ranges(100, 16, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 100);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "ranges must tile the fleet");
        }
        for range in &ranges[..3] {
            assert_eq!(range.start % 16, 0, "interior boundaries are chunk-aligned");
            assert_eq!(range.end % 16, 0);
        }
        assert_eq!(ranges.iter().map(ShardRange::len).sum::<u64>(), 100);
    }

    #[test]
    fn more_shards_than_chunks_yields_empty_tail_shards() {
        let ranges = shard_ranges(8, 8, 4);
        assert_eq!(ranges[0], ShardRange { start: 0, end: 8 });
        assert!(ranges[1..].iter().all(ShardRange::is_empty));
    }

    fn sample_row(device_id: u64) -> DeviceSummary {
        DeviceSummary {
            device_id,
            seed: device_id.wrapping_mul(7),
            routine: "office_day".to_string(),
            backend: "f64".to_string(),
            faulted_epochs: 1,
            epochs: 20,
            correct_epochs: 17,
            early_exit_epochs: 12,
            early_exit_correct: 11,
            escalated_epochs: 8,
            escalated_correct: 6,
            accuracy: 0.85,
            average_current_ua: 55.5 + device_id as f64,
            total_charge_uc: 1234.5,
            duration_s: 20.0,
            residency_s: vec![1.0, 2.0, 17.0],
            tx_epochs: vec![3, 15, 2],
            tx_bytes: vec![9276, 2220, 3104],
            tx_charge_uc: vec![37119.0, 8895.0, 12431.0],
            start_epoch: device_id % 4,
            departed: device_id % 2 == 1,
        }
    }

    #[test]
    fn spool_round_trips_rows_bit_exactly() {
        let mut bytes = Vec::new();
        let rows: Vec<DeviceSummary> = (0..5).map(sample_row).collect();
        let mut writer = SpoolWriter::new(&mut bytes).unwrap();
        for row in &rows {
            writer.push(row).unwrap();
        }
        assert_eq!(writer.rows(), 5);
        writer.finish().unwrap();

        let read: Vec<DeviceSummary> =
            SpoolReader::new(&bytes[..]).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(read, rows);
    }

    #[test]
    fn torn_and_corrupt_spools_are_rejected() {
        let mut bytes = Vec::new();
        let mut writer = SpoolWriter::new(&mut bytes).unwrap();
        writer.push(&sample_row(0)).unwrap();
        writer.finish().unwrap();

        // Every strict prefix is torn.
        for cut in 0..bytes.len() {
            let outcome: Result<Vec<_>, _> = match SpoolReader::new(&bytes[..cut]) {
                Ok(reader) => reader.collect(),
                Err(e) => Err(e),
            };
            assert!(outcome.is_err(), "a spool truncated at byte {cut} must not read back");
        }

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(SpoolReader::new(&bad_magic[..]).is_err());

        let mut bad_kind = bytes.clone();
        bad_kind[12] = 0x7f;
        let outcome: Result<Vec<_>, _> = SpoolReader::new(&bad_kind[..]).unwrap().collect();
        assert!(outcome.is_err());
    }

    #[test]
    fn fleet_stats_merge_equals_monolithic_observation() {
        let rows: Vec<DeviceSummary> = (0..12).map(sample_row).collect();
        let mut monolithic = FleetStats::new();
        for row in &rows {
            monolithic.observe(row);
        }
        let mut merged = FleetStats::new();
        for chunk in rows.chunks(5) {
            let mut shard = FleetStats::new();
            for row in chunk {
                shard.observe(row);
            }
            merged.merge(&shard);
        }
        // An empty shard is the identity.
        merged.merge(&FleetStats::new());
        assert_eq!(monolithic, merged);

        let mut a = Vec::new();
        let mut b = Vec::new();
        monolithic.encode_into(&mut a);
        merged.encode_into(&mut b);
        assert_eq!(a, b, "encodings must be byte-identical");

        let mut cursor = ByteCursor::new(&a);
        let decoded = FleetStats::decode_from(&mut cursor).unwrap();
        cursor.finish().unwrap();
        assert_eq!(decoded, monolithic);
    }
}
