//! Error type of the AdaSense framework.

use std::fmt;

/// Errors returned by the AdaSense framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdaSenseError {
    /// A configuration value was invalid (empty configuration list, bad fraction, …).
    InvalidSpec {
        /// What was wrong with the specification.
        reason: String,
    },
    /// Training could not be performed (for example, an empty training set).
    Training {
        /// What went wrong during training.
        reason: String,
    },
    /// A simulation could not be run (for example, an empty scenario).
    Simulation {
        /// What went wrong during simulation.
        reason: String,
    },
    /// A controller was asked to operate on a configuration it does not know.
    UnknownConfiguration {
        /// The label of the unknown configuration.
        label: String,
    },
    /// A telemetry stream could not be ingested (connection failure, corrupt
    /// or truncated frame, unsupported wire-format version, …).
    Ingest {
        /// What went wrong while ingesting the stream.
        reason: String,
    },
    /// A sharded fleet artifact (summary spool, encoded report, shard plan)
    /// was invalid or could not be produced.
    Shard {
        /// What went wrong with the shard artifact.
        reason: String,
    },
}

impl AdaSenseError {
    /// Creates an [`AdaSenseError::InvalidSpec`] error.
    pub fn invalid_spec(reason: impl Into<String>) -> Self {
        Self::InvalidSpec { reason: reason.into() }
    }

    /// Creates an [`AdaSenseError::Training`] error.
    pub fn training(reason: impl Into<String>) -> Self {
        Self::Training { reason: reason.into() }
    }

    /// Creates an [`AdaSenseError::Simulation`] error.
    pub fn simulation(reason: impl Into<String>) -> Self {
        Self::Simulation { reason: reason.into() }
    }

    /// Creates an [`AdaSenseError::Ingest`] error.
    pub fn ingest(reason: impl Into<String>) -> Self {
        Self::Ingest { reason: reason.into() }
    }

    /// Creates an [`AdaSenseError::Shard`] error.
    pub fn shard(reason: impl Into<String>) -> Self {
        Self::Shard { reason: reason.into() }
    }
}

impl fmt::Display for AdaSenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaSenseError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
            AdaSenseError::Training { reason } => write!(f, "training failed: {reason}"),
            AdaSenseError::Simulation { reason } => write!(f, "simulation failed: {reason}"),
            AdaSenseError::UnknownConfiguration { label } => {
                write!(f, "unknown sensor configuration `{label}`")
            }
            AdaSenseError::Ingest { reason } => write!(f, "telemetry ingestion failed: {reason}"),
            AdaSenseError::Shard { reason } => write!(f, "fleet sharding failed: {reason}"),
        }
    }
}

impl std::error::Error for AdaSenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = [
            AdaSenseError::invalid_spec("no configurations"),
            AdaSenseError::training("empty training set"),
            AdaSenseError::simulation("empty scenario"),
            AdaSenseError::UnknownConfiguration { label: "F1_A1".into() },
            AdaSenseError::ingest("truncated frame"),
            AdaSenseError::shard("torn summary spool"),
        ];
        for error in errors {
            let message = error.to_string();
            assert!(!message.is_empty());
            assert!(message.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AdaSenseError>();
    }
}
