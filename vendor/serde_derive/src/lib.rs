//! No-op derive macros backing the vendored `serde` stub.
//!
//! `#[derive(Serialize, Deserialize)]` in this workspace only documents intent —
//! nothing consumes the trait impls — so the derives expand to nothing. The
//! `serde` helper attribute is declared so `#[serde(...)]` field attributes
//! would be tolerated if a future type used them.

use proc_macro::TokenStream;

/// Expands to nothing; exists so `#[derive(Serialize)]` resolves.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; exists so `#[derive(Deserialize)]` resolves.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
