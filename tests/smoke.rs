//! Cheap full-closed-loop smoke test.
//!
//! This is the one test CI relies on to prove the whole stack is alive — spec →
//! training → closed-loop SPOT simulation → report — without the heavier
//! statistical assertions of `end_to_end.rs`. It must stay fast (one quick
//! training run, one short scenario).

use adasense_repro::adasense::prelude::*;

#[test]
fn quick_spec_trains_and_simulates_the_full_closed_loop() {
    let spec = ExperimentSpec::quick();
    let trained = TrainedSystem::train(&spec).expect("quick spec trains");

    let report = Simulator::new(&spec, &trained)
        .with_controller(ControllerKind::Spot { stability_threshold: 5 })
        .run(ScenarioSpec::sit_then_walk(20.0, 20.0))
        .expect("closed-loop simulation runs");

    assert!(report.accuracy() > 0.0, "the closed loop must classify something correctly");
    assert!(
        report.average_current_ua() > 0.0,
        "the energy model must account a positive average current"
    );
    assert!(!report.records().is_empty(), "the simulator must emit per-epoch records");
}
