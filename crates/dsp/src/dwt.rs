//! Haar discrete wavelet transform.
//!
//! The related work the paper builds on (Bhat et al. \[12\], Zhu et al. \[16\]) uses
//! wavelet coefficients as a *more expensive* alternative to statistical features,
//! and chooses feature sets dynamically based on the power budget.  AdaSense's
//! argument is that its cheap statistical + low-frequency-Fourier features are
//! enough; this module provides the Haar DWT so that claim can be tested as an
//! ablation (accuracy and cost with wavelet-augmented features versus the paper's
//! 15-dimensional vector — see the `features` bench).

/// One level of the Haar wavelet transform: returns `(approximation, detail)`
/// coefficient vectors of half the input length.
///
/// An odd trailing sample is carried into the approximation unchanged (periodic
/// padding is not required for feature extraction purposes).
pub fn haar_level(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let pairs = signal.len() / 2;
    let mut approximation = Vec::with_capacity(pairs + signal.len() % 2);
    let mut detail = Vec::with_capacity(pairs);
    let scale = std::f64::consts::FRAC_1_SQRT_2;
    for k in 0..pairs {
        let a = signal[2 * k];
        let b = signal[2 * k + 1];
        approximation.push((a + b) * scale);
        detail.push((a - b) * scale);
    }
    if signal.len() % 2 == 1 {
        approximation.push(signal[signal.len() - 1]);
    }
    (approximation, detail)
}

/// Reusable working memory for in-place multi-level Haar decomposition.
///
/// [`haar_decompose`] allocates fresh vectors for the approximation and every
/// detail level on each call; a streaming loop that decomposes one window per
/// tick should hold a workspace and call [`HaarWorkspace::decompose`] instead —
/// after the buffers have grown to the largest window size the decomposition
/// performs no heap allocation.  Each level halves the approximation in place
/// (the approximation of level `k` is written over the front of the level-`k−1`
/// approximation) and appends the detail coefficients to one packed buffer.
#[derive(Debug, Clone, Default)]
pub struct HaarWorkspace {
    /// The current approximation; after `decompose` the first
    /// `approximation_len` values are the final (coarsest) approximation.
    approx: Vec<f64>,
    approximation_len: usize,
    /// Detail coefficients of every level, finest level first, packed
    /// back-to-back.
    details: Vec<f64>,
    /// Exclusive end offsets into `details`, one per level, finest first.
    level_ends: Vec<usize>,
}

impl HaarWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decomposes `signal` over at most `levels` levels, stopping early once the
    /// approximation has a single sample.  Numerically identical to
    /// [`haar_decompose`]; the results stay valid until the next call.
    pub fn decompose(&mut self, signal: &[f64], levels: usize) {
        self.approx.clear();
        self.approx.extend_from_slice(signal);
        self.details.clear();
        self.level_ends.clear();
        let mut len = self.approx.len();
        for _ in 0..levels {
            if len < 2 {
                break;
            }
            let pairs = len / 2;
            let odd = len % 2 == 1;
            let scale = std::f64::consts::FRAC_1_SQRT_2;
            let carried = if odd { self.approx[len - 1] } else { 0.0 };
            for k in 0..pairs {
                let a = self.approx[2 * k];
                let b = self.approx[2 * k + 1];
                // k ≤ 2k, so the write never clobbers an unread pair.
                self.approx[k] = (a + b) * scale;
                self.details.push((a - b) * scale);
            }
            len = pairs;
            if odd {
                self.approx[len] = carried;
                len += 1;
            }
            self.level_ends.push(self.details.len());
        }
        self.approximation_len = len;
    }

    /// The final approximation of the last [`decompose`](Self::decompose) call.
    pub fn approximation(&self) -> &[f64] {
        &self.approx[..self.approximation_len]
    }

    /// Number of levels actually decomposed.
    pub fn levels(&self) -> usize {
        self.level_ends.len()
    }

    /// Detail coefficients of one level, `0` being the **coarsest** (matching
    /// the ordering of [`haar_decompose`]).
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ self.levels()`.
    pub fn detail(&self, level: usize) -> &[f64] {
        let fine_index = self.levels() - 1 - level;
        let start = if fine_index == 0 { 0 } else { self.level_ends[fine_index - 1] };
        &self.details[start..self.level_ends[fine_index]]
    }

    /// Writes the per-level detail energies into `out` (cleared first), from
    /// the coarsest to the finest level, padding missing levels with zero —
    /// the allocation-free equivalent of [`haar_band_energies`].
    pub fn band_energies_into(&self, levels: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(levels.saturating_sub(self.levels()), 0.0);
        for level in 0..self.levels().min(levels) {
            out.push(band_energy(self.detail(level)));
        }
    }
}

/// Multi-level Haar decomposition: returns the final approximation followed by the
/// detail vectors from the coarsest to the finest level.
///
/// Decomposition stops early once the approximation has a single sample.  For
/// per-tick use prefer [`HaarWorkspace::decompose`], which reuses its buffers
/// instead of allocating per level.
pub fn haar_decompose(signal: &[f64], levels: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut workspace = HaarWorkspace::new();
    workspace.decompose(signal, levels);
    let details = (0..workspace.levels()).map(|level| workspace.detail(level).to_vec()).collect();
    (workspace.approximation().to_vec(), details)
}

/// Energy (sum of squares) of a coefficient vector — the usual wavelet feature.
pub fn band_energy(coefficients: &[f64]) -> f64 {
    coefficients.iter().map(|c| c * c).sum()
}

/// Per-level Haar detail energies of `signal`, from the coarsest to the finest
/// level — a compact wavelet feature vector of length `levels` (missing levels are
/// reported as zero energy).
pub fn haar_band_energies(signal: &[f64], levels: usize) -> Vec<f64> {
    let mut workspace = HaarWorkspace::new();
    workspace.decompose(signal, levels);
    let mut energies = Vec::with_capacity(levels);
    workspace.band_energies_into(levels, &mut energies);
    energies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_of_a_constant_signal_has_zero_detail() {
        let (approx, detail) = haar_level(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(approx.len(), 2);
        assert!(detail.iter().all(|d| d.abs() < 1e-12));
        // Approximation carries the (scaled) signal level.
        assert!((approx[0] - 3.0 * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn transform_preserves_energy() {
        let signal: Vec<f64> = (0..64).map(|k| ((k * 13 % 7) as f64 - 3.0) * 0.5).collect();
        let input_energy = band_energy(&signal);
        let (approx, detail) = haar_level(&signal);
        let output_energy = band_energy(&approx) + band_energy(&detail);
        assert!((input_energy - output_energy).abs() < 1e-9);
    }

    #[test]
    fn multi_level_decomposition_has_the_expected_shapes() {
        let signal = vec![1.0; 32];
        let (approx, details) = haar_decompose(&signal, 3);
        assert_eq!(approx.len(), 4);
        assert_eq!(details.len(), 3);
        assert_eq!(details[0].len(), 4, "coarsest detail first");
        assert_eq!(details[2].len(), 16, "finest detail last");
    }

    #[test]
    fn decomposition_stops_when_the_signal_runs_out() {
        let (approx, details) = haar_decompose(&[1.0, 2.0], 5);
        assert_eq!(approx.len(), 1);
        assert_eq!(details.len(), 1);
    }

    #[test]
    fn odd_lengths_are_handled() {
        let (approx, detail) = haar_level(&[1.0, 2.0, 3.0]);
        assert_eq!(approx.len(), 2);
        assert_eq!(detail.len(), 1);
        assert_eq!(approx[1], 3.0);
    }

    #[test]
    fn fast_oscillations_concentrate_energy_in_fine_details() {
        // A Nyquist-rate alternation lives entirely in the finest detail band.
        let alternating: Vec<f64> = (0..64).map(|k| if k % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let energies = haar_band_energies(&alternating, 3);
        assert_eq!(energies.len(), 3);
        let finest = energies[2];
        assert!(finest > 0.9 * band_energy(&alternating));
        assert!(energies[0] < 1e-9);
    }

    #[test]
    fn missing_levels_are_padded_with_zero_energy() {
        let energies = haar_band_energies(&[1.0, 2.0], 4);
        assert_eq!(energies.len(), 4);
        assert!(energies[..3].iter().take(3).all(|e| *e == 0.0));
    }

    #[test]
    fn empty_signal_is_all_zero() {
        let energies = haar_band_energies(&[], 3);
        assert_eq!(energies, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn workspace_matches_level_by_level_decomposition() {
        let signal: Vec<f64> = (0..37).map(|k| ((k * 17 % 11) as f64 - 5.0) * 0.3).collect();
        // Reference: repeated haar_level calls (the pre-workspace algorithm).
        let mut reference_approx = signal.clone();
        let mut reference_details = Vec::new();
        for _ in 0..4 {
            if reference_approx.len() < 2 {
                break;
            }
            let (next, detail) = haar_level(&reference_approx);
            reference_details.push(detail);
            reference_approx = next;
        }
        reference_details.reverse();

        let mut workspace = HaarWorkspace::new();
        workspace.decompose(&signal, 4);
        assert_eq!(workspace.approximation(), reference_approx.as_slice());
        assert_eq!(workspace.levels(), reference_details.len());
        for (level, expected) in reference_details.iter().enumerate() {
            assert_eq!(workspace.detail(level), expected.as_slice(), "level {level}");
        }
    }

    #[test]
    fn workspace_is_reusable_across_window_sizes() {
        let mut workspace = HaarWorkspace::new();
        workspace.decompose(&[1.0; 64], 3);
        assert_eq!(workspace.approximation().len(), 8);
        workspace.decompose(&[2.0, 4.0], 3);
        assert_eq!(workspace.levels(), 1);
        assert_eq!(workspace.approximation().len(), 1);
        assert!(
            (workspace.approximation()[0] - 6.0 * std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12
        );
        let mut energies = Vec::new();
        workspace.band_energies_into(3, &mut energies);
        assert_eq!(energies.len(), 3);
        assert_eq!(&energies[..2], &[0.0, 0.0]);
    }
}
