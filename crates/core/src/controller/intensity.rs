//! The intensity-based baseline controller (NK et al. \[8\]).
//!
//! The baseline AdaSense is compared against in Fig. 7 switches the sensor "to
//! low-power mode with low-intensity user activities (i.e. stand, sit, lie down),
//! and operate[s] at the normal mode with more intense activities", where intensity
//! is "the first derivative of the accelerometer readings".  It keeps a separate
//! classifier per configuration, which the simulator selects from the trained
//! classifier bank.

use adasense_dsp::IntensityEstimator;
use adasense_sensor::SensorConfig;
use serde::{Deserialize, Serialize};

use super::{ControllerInput, SensorController};

/// The intensity-based adaptive sensing controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntensityBasedController {
    high: SensorConfig,
    low: SensorConfig,
    estimator: IntensityEstimator,
    current_is_high: bool,
}

impl IntensityBasedController {
    /// Creates a controller switching between a high-power (normal-mode) and a
    /// low-power configuration, with the default calibrated intensity threshold.
    pub fn new(high: SensorConfig, low: SensorConfig) -> Self {
        Self { high, low, estimator: IntensityEstimator::calibrated(), current_is_high: true }
    }

    /// Overrides the intensity threshold (g/s).
    pub fn with_estimator(mut self, estimator: IntensityEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// The high-power configuration.
    pub fn high_config(&self) -> SensorConfig {
        self.high
    }

    /// The low-power configuration.
    pub fn low_config(&self) -> SensorConfig {
        self.low
    }

    /// The two configurations this controller can select, `[high, low]`.
    pub fn configs(&self) -> [SensorConfig; 2] {
        [self.high, self.low]
    }
}

impl SensorController for IntensityBasedController {
    fn config(&self) -> SensorConfig {
        if self.current_is_high {
            self.high
        } else {
            self.low
        }
    }

    fn observe(&mut self, input: &ControllerInput) -> SensorConfig {
        self.current_is_high = input.intensity_g_per_s > self.estimator.threshold_g_per_s;
        self.config()
    }

    fn reset(&mut self) {
        self.current_is_high = true;
    }

    fn name(&self) -> String {
        "intensity-based (NK et al.)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::Activity;
    use adasense_sensor::{AveragingWindow, SamplingFrequency};

    fn controller() -> IntensityBasedController {
        IntensityBasedController::new(
            SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128),
            SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A32),
        )
    }

    fn input(intensity: f64) -> ControllerInput {
        ControllerInput {
            predicted: Activity::Walk,
            confidence: 0.9,
            intensity_g_per_s: intensity,
            escalated: false,
        }
    }

    #[test]
    fn starts_in_the_high_power_configuration() {
        assert_eq!(controller().config().label(), "F100_A128");
    }

    #[test]
    fn switches_to_low_power_for_calm_signals_and_back_for_intense_ones() {
        let mut c = controller();
        let threshold = IntensityEstimator::calibrated().threshold_g_per_s;
        let low = c.observe(&input(threshold * 0.2));
        assert_eq!(low, c.low_config());
        let high = c.observe(&input(threshold * 3.0));
        assert_eq!(high, c.high_config());
    }

    #[test]
    fn reset_returns_to_high_power() {
        let mut c = controller();
        c.observe(&input(0.0));
        assert_eq!(c.config(), c.low_config());
        c.reset();
        assert_eq!(c.config(), c.high_config());
    }

    #[test]
    fn custom_threshold_is_honoured() {
        let mut c = controller().with_estimator(IntensityEstimator::with_threshold(100.0));
        // Even a fairly energetic signal stays below an absurdly high threshold.
        assert_eq!(c.observe(&input(50.0)), c.low_config());
    }

    #[test]
    fn exposes_both_configurations() {
        let c = controller();
        assert_eq!(c.configs(), [c.high_config(), c.low_config()]);
        assert!(!c.name().is_empty());
    }
}
