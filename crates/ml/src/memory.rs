//! Classifier weight-memory accounting.
//!
//! The paper's memory argument (Section V-D) is that AdaSense stores *one* network
//! trained on data from all sensor configurations, whereas the intensity-based
//! baseline retrains a separate network per configuration — so AdaSense needs `k×`
//! less weight memory when the baseline uses `k` configurations.  This module
//! computes those footprints for any architecture and weight precision.

use serde::{Deserialize, Serialize};

use crate::network::{Mlp, MlpConfig};

/// Weight-memory footprint of one or more classifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Number of stored classifiers.
    pub models: usize,
    /// Trainable parameters per classifier.
    pub parameters_per_model: usize,
    /// Bytes used to store one parameter.
    pub bytes_per_parameter: usize,
}

impl MemoryFootprint {
    /// Footprint of a single classifier with the given architecture, assuming the
    /// given weight precision in bytes (4 for `f32`, the usual embedded choice).
    pub fn single(config: &MlpConfig, bytes_per_parameter: usize) -> Self {
        Self { models: 1, parameters_per_model: config.parameter_count(), bytes_per_parameter }
    }

    /// Footprint of a bank of `models` identical classifiers (the
    /// one-network-per-configuration strategy of the baseline).
    pub fn bank(config: &MlpConfig, models: usize, bytes_per_parameter: usize) -> Self {
        Self { models, parameters_per_model: config.parameter_count(), bytes_per_parameter }
    }

    /// Footprint of an already-constructed model.
    pub fn of_model(model: &Mlp, bytes_per_parameter: usize) -> Self {
        Self { models: 1, parameters_per_model: model.parameter_count(), bytes_per_parameter }
    }

    /// Total bytes of weight storage.
    pub fn total_bytes(&self) -> usize {
        self.models * self.parameters_per_model * self.bytes_per_parameter
    }

    /// Total kilobytes of weight storage.
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// How many times larger `other` is than `self`.
    ///
    /// Returns infinity if `self` is empty.
    pub fn savings_factor_vs(&self, other: &MemoryFootprint) -> f64 {
        let own = self.total_bytes();
        if own == 0 {
            f64::INFINITY
        } else {
            other.total_bytes() as f64 / own as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_classifier_fits_in_a_few_kilobytes() {
        let footprint = MemoryFootprint::single(&MlpConfig::paper(), 4);
        // (15×24 + 24) + (24×6 + 6) = 534 parameters ≈ 2.1 KiB at f32.
        assert_eq!(footprint.parameters_per_model, 534);
        assert!(footprint.total_kib() < 4.0, "got {} KiB", footprint.total_kib());
    }

    #[test]
    fn a_bank_of_four_networks_is_four_times_larger() {
        let single = MemoryFootprint::single(&MlpConfig::paper(), 4);
        let bank = MemoryFootprint::bank(&MlpConfig::paper(), 4, 4);
        assert_eq!(bank.total_bytes(), 4 * single.total_bytes());
        assert!((single.savings_factor_vs(&bank) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn precision_scales_linearly() {
        let f32_footprint = MemoryFootprint::single(&MlpConfig::paper(), 4);
        let f64_footprint = MemoryFootprint::single(&MlpConfig::paper(), 8);
        assert_eq!(f64_footprint.total_bytes(), 2 * f32_footprint.total_bytes());
    }

    #[test]
    fn of_model_matches_config_count() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(0));
        let from_model = MemoryFootprint::of_model(&model, 4);
        let from_config = MemoryFootprint::single(&MlpConfig::paper(), 4);
        assert_eq!(from_model.total_bytes(), from_config.total_bytes());
    }

    #[test]
    fn empty_footprint_has_infinite_savings() {
        let empty = MemoryFootprint { models: 0, parameters_per_model: 0, bytes_per_parameter: 4 };
        let other = MemoryFootprint::single(&MlpConfig::paper(), 4);
        assert!(empty.savings_factor_vs(&other).is_infinite());
    }
}
