//! # adasense-sensor
//!
//! Simulated accelerometer front-end for the AdaSense (DAC 2020) reproduction.
//!
//! The paper evaluates AdaSense on a Bosch BMI160 inertial measurement unit driven by
//! a TI CC2640R2F MCU.  That hardware is not available here, so this crate provides a
//! behavioural model of the relevant parts of such an IMU:
//!
//! * [`config`] — the sensor *configurations*: sampling frequency × averaging window
//!   combinations (Table I of the paper), and the operation mode (normal vs
//!   low-power) each combination implies.
//! * [`energy`] — a duty-cycle current model: in low-power mode the sensor only wakes
//!   long enough to take `averaging_window` internal samples per output sample, so
//!   both the sampling frequency *and* the averaging window determine current draw.
//! * [`noise`] — an averaging-dependent measurement noise model: smaller averaging
//!   windows give noisier outputs.
//! * [`sample`] — the 3-axis sample type and helpers.
//! * [`fault`] — transient fault transforms (dropout, stuck axes, noise bursts)
//!   applied to captured windows by the scenario layer's fault injector.
//! * [`telemetry`] — the decoded telemetry frame payload ([`TelemetryBatch`]):
//!   one configuration-tagged, ground-truth-labelled sample window per
//!   classification epoch, as streamed off-device by the ingestion layer.
//! * [`accelerometer`] — the simulated sensor itself: given a continuous analog
//!   [`SignalSource`] it produces the digital sample stream that a real IMU would,
//!   including under-sampling, averaging and noise.
//!
//! # Example
//!
//! ```
//! use adasense_sensor::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! /// A constant-gravity source: the device is lying flat.
//! struct Flat;
//! impl SignalSource for Flat {
//!     fn sample(&self, _t: f64) -> [f64; 3] {
//!         [0.0, 0.0, 1.0]
//!     }
//! }
//!
//! let config = SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128);
//! let accel = Accelerometer::new(config);
//! let mut rng = StdRng::seed_from_u64(7);
//! let samples = accel.capture(&Flat, 0.0, 2.0, &mut rng);
//! assert_eq!(samples.len(), 200); // 2 seconds at 100 Hz
//! assert!(accel.current_ua() > 100.0); // normal-mode current
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accelerometer;
pub mod config;
pub mod energy;
pub mod fault;
pub mod noise;
pub mod sample;
pub mod telemetry;

pub use accelerometer::{Accelerometer, SignalSource};
pub use config::{AveragingWindow, OperationMode, SamplingFrequency, SensorConfig};
pub use energy::{Charge, EnergyModel, RadioModel, TxPolicy, SUPPLY_VOLTS};
pub use fault::FaultKind;
pub use noise::NoiseModel;
pub use sample::Sample3;
pub use telemetry::{ClassLabel, TelemetryBatch};

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::accelerometer::{Accelerometer, SignalSource};
    pub use crate::config::{AveragingWindow, OperationMode, SamplingFrequency, SensorConfig};
    pub use crate::energy::{Charge, EnergyModel, RadioModel, TxPolicy, SUPPLY_VOLTS};
    pub use crate::fault::FaultKind;
    pub use crate::noise::NoiseModel;
    pub use crate::sample::Sample3;
    pub use crate::telemetry::{ClassLabel, TelemetryBatch};
}
