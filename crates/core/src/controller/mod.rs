//! Adaptive sensing controllers.
//!
//! A controller decides, after every classification epoch, which sensor
//! configuration the accelerometer should use for the next epoch (Fig. 3).  Four
//! policies are provided:
//!
//! * [`SpotController`] — the paper's State Prediction Optimization Technique
//!   (Section IV-D), optionally with the confidence extension (Section IV-E).
//! * [`StaticController`] — the fixed high-power baseline used throughout Section V.
//! * [`IntensityBasedController`] — the related-work baseline of NK et al. \[8\],
//!   which switches between two configurations based on signal intensity.

mod intensity;
mod spot;
mod static_hold;

pub use intensity::IntensityBasedController;
pub use spot::SpotController;
pub use static_hold::StaticController;

use adasense_data::Activity;
use adasense_sensor::{SensorConfig, TxPolicy};
use serde::{Deserialize, Serialize};

use crate::training::ExperimentSpec;

/// What the controller gets to see after each classification epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerInput {
    /// The activity the classifier recognized for the last batch.
    pub predicted: Activity,
    /// The classifier's softmax confidence for that activity.
    pub confidence: f64,
    /// Mean absolute derivative of the batch (g/s summed over axes) — the quantity
    /// the intensity-based baseline switches on.  AdaSense's own controllers ignore
    /// it (the paper highlights that avoiding this computation saves processing).
    pub intensity_g_per_s: f64,
    /// Whether a cascade backend escalated this epoch to its full second
    /// stage.  Escalations are a free uncertainty signal: a stage-1-aware
    /// controller can treat a rising escalation rate like low confidence.
    /// Single-stage backends always report `false`.
    pub escalated: bool,
}

/// A policy that selects the sensor configuration for the next epoch.
pub trait SensorController {
    /// The configuration the sensor should currently be using.
    fn config(&self) -> SensorConfig;

    /// Feeds one classification result to the controller and returns the
    /// configuration for the next epoch.
    fn observe(&mut self, input: &ControllerInput) -> SensorConfig;

    /// Resets the controller to its initial state (highest-power configuration).
    fn reset(&mut self);

    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// The transmission policy for the *next* epoch, chosen alongside the
    /// sensor configuration.  The default — transmit the extracted feature
    /// vector — is the paper's local-processing baseline; adaptive
    /// controllers (see [`SpotController`]) escalate to raw payloads when
    /// uncertain and drop to compressed payloads when stable.
    fn tx_policy(&self) -> TxPolicy {
        TxPolicy::Features
    }
}

/// A declarative description of a controller, used to configure simulations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Keep the sensor at the high-power `F100_A128` configuration forever
    /// (the paper's accuracy/power baseline).
    StaticHigh,
    /// Keep the sensor at an arbitrary fixed configuration.
    Static {
        /// The configuration to hold.
        config: SensorConfig,
    },
    /// The SPOT finite state machine over the four Pareto configurations.
    Spot {
        /// Number of consecutive stable epochs before stepping down one state.
        stability_threshold: u32,
    },
    /// SPOT with the confidence extension: only activity changes reported with at
    /// least this confidence reset the FSM to the high-power state.
    SpotWithConfidence {
        /// Number of consecutive stable epochs before stepping down one state.
        stability_threshold: u32,
        /// Minimum confidence for an activity change to be trusted.
        confidence_threshold: f64,
    },
    /// The intensity-based approach of NK et al. \[8\].
    IntensityBased,
}

impl ControllerKind {
    /// Instantiates the controller described by `self`, using the Pareto states and
    /// intensity-baseline configurations implied by `spec`.
    pub fn build(&self, spec: &ExperimentSpec) -> Box<dyn SensorController> {
        match *self {
            ControllerKind::StaticHigh => Box::new(StaticController::high_power()),
            ControllerKind::Static { config } => Box::new(StaticController::new(config)),
            ControllerKind::Spot { stability_threshold } => {
                Box::new(SpotController::paper(stability_threshold))
            }
            ControllerKind::SpotWithConfidence { stability_threshold, confidence_threshold } => {
                Box::new(SpotController::paper_with_confidence(
                    stability_threshold,
                    confidence_threshold,
                ))
            }
            ControllerKind::IntensityBased => {
                let [high, low] = spec.intensity_configs();
                Box::new(IntensityBasedController::new(high, low))
            }
        }
    }

    /// A short label used in report tables.
    pub fn label(&self) -> String {
        match self {
            ControllerKind::StaticHigh => "static F100_A128".to_string(),
            ControllerKind::Static { config } => format!("static {config}"),
            ControllerKind::Spot { stability_threshold } => {
                format!("SPOT (threshold {stability_threshold}s)")
            }
            ControllerKind::SpotWithConfidence { stability_threshold, confidence_threshold } => {
                format!("SPOT+confidence {confidence_threshold} (threshold {stability_threshold}s)")
            }
            ControllerKind::IntensityBased => "intensity-based (NK et al.)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(activity: Activity) -> ControllerInput {
        ControllerInput {
            predicted: activity,
            confidence: 0.95,
            intensity_g_per_s: 0.0,
            escalated: false,
        }
    }

    #[test]
    fn controller_kind_builds_every_variant() {
        let spec = ExperimentSpec::quick();
        let kinds = [
            ControllerKind::StaticHigh,
            ControllerKind::Static { config: SensorConfig::paper_pareto_front()[2] },
            ControllerKind::Spot { stability_threshold: 3 },
            ControllerKind::SpotWithConfidence {
                stability_threshold: 3,
                confidence_threshold: 0.85,
            },
            ControllerKind::IntensityBased,
        ];
        for kind in kinds {
            let mut controller = kind.build(&spec);
            assert!(!kind.label().is_empty());
            let before = controller.config();
            let after = controller.observe(&input(Activity::Sit));
            assert_eq!(controller.config(), after);
            controller.reset();
            let _ = before;
        }
    }

    #[test]
    fn every_controller_starts_at_a_known_configuration() {
        let spec = ExperimentSpec::quick();
        let high = SensorConfig::paper_pareto_front()[0];
        assert_eq!(ControllerKind::StaticHigh.build(&spec).config(), high);
        assert_eq!(ControllerKind::Spot { stability_threshold: 5 }.build(&spec).config(), high);
        assert_eq!(ControllerKind::IntensityBased.build(&spec).config(), high);
    }
}
