//! Ground-truth label-track export for recorded telemetry traces.
//!
//! The ingestion layer streams one labelled sample window per classification
//! epoch off-device (see `docs/WIRE_FORMAT.md`).  This module provides the
//! ground-truth side of that trace: sampling an [`ActivitySchedule`] at the
//! same per-epoch instants the device runtime scores against, and rendering
//! the resulting label track in a plotting-friendly CSV form.

use crate::activity::Activity;
use crate::schedule::ActivitySchedule;

/// Offset subtracted from an epoch's end time when querying its ground-truth
/// label, in seconds.
///
/// The device runtime classifies the window ending at `t_end` and scores it
/// against the activity at `t_end - EPOCH_LABEL_OFFSET_S` — an instant just
/// *inside* the epoch, so schedules defined over `[0, duration)` never see an
/// out-of-range query.  Trace recorders and label exporters use the same
/// offset so recorded labels match what the runtime would have scored.
pub const EPOCH_LABEL_OFFSET_S: f64 = 1e-6;

/// The ground-truth label of each classification epoch of `schedule`: entry
/// `k` is the activity at `(k + 1) * epoch_s - `[`EPOCH_LABEL_OFFSET_S`],
/// covering every full epoch the schedule spans.
///
/// ```
/// use adasense_data::export::label_track;
/// use adasense_data::{Activity, ActivitySchedule};
///
/// let schedule = ActivitySchedule::sit_then_walk(2.0, 2.0);
/// let track = label_track(&schedule, 1.0);
/// assert_eq!(track, vec![Activity::Sit, Activity::Sit, Activity::Walk, Activity::Walk]);
/// ```
///
/// # Panics
///
/// Panics if `epoch_s` is not strictly positive.
pub fn label_track(schedule: &ActivitySchedule, epoch_s: f64) -> Vec<Activity> {
    assert!(epoch_s > 0.0, "epoch length must be positive, got {epoch_s}");
    // The nudge keeps a quotient that lands just below an integer (float
    // division of a duration that is an exact multiple of the epoch) from
    // dropping the final full epoch.
    let epochs = (schedule.total_duration_s() / epoch_s + 1e-9).floor() as usize;
    (1..=epochs)
        .map(|k| {
            let t = k as f64 * epoch_s - EPOCH_LABEL_OFFSET_S;
            schedule.activity_at(t).expect("every full epoch lies inside the schedule")
        })
        .collect()
}

/// CSV of a label track: one row per epoch (`t_end_s,label`), with `t_end_s`
/// the epoch's end time printed to microsecond precision with trailing zeros
/// trimmed (so sub-second epoch lengths like 0.25 s are not rounded away).
pub fn label_track_to_csv(track: &[Activity], epoch_s: f64) -> String {
    let mut out = String::from("t_end_s,label\n");
    for (k, activity) in track.iter().enumerate() {
        let t = format!("{:.6}", (k + 1) as f64 * epoch_s);
        let t = t.trim_end_matches('0').trim_end_matches('.');
        out.push_str(&format!("{t},{}\n", activity.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_track_samples_just_inside_each_epoch() {
        // A boundary exactly on an epoch end must attribute the epoch to the
        // activity *before* the switch (the window that was classified).
        let schedule = ActivitySchedule::sit_then_walk(3.0, 2.0);
        let track = label_track(&schedule, 1.0);
        assert_eq!(
            track,
            vec![Activity::Sit, Activity::Sit, Activity::Sit, Activity::Walk, Activity::Walk]
        );
    }

    #[test]
    fn partial_trailing_epochs_are_dropped() {
        let schedule = ActivitySchedule::sit_then_walk(1.0, 1.5);
        assert_eq!(label_track(&schedule, 1.0).len(), 2);
    }

    #[test]
    fn empty_schedules_have_empty_tracks() {
        assert!(label_track(&ActivitySchedule::default(), 1.0).is_empty());
    }

    #[test]
    fn inexact_float_quotients_keep_the_final_epoch() {
        // 0.3 / 0.1 is 2.999…96 in f64; the final full epoch must not be
        // dropped by the floor.
        let schedule = ActivitySchedule::sit_then_walk(0.2, 0.1);
        let track = label_track(&schedule, 0.1);
        assert_eq!(track, vec![Activity::Sit, Activity::Sit, Activity::Walk]);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epochs_are_rejected() {
        let _ = label_track(&ActivitySchedule::sit_then_walk(1.0, 1.0), 0.0);
    }

    #[test]
    fn csv_lists_one_row_per_epoch() {
        let track = vec![Activity::Sit, Activity::Walk];
        let csv = label_track_to_csv(&track, 1.0);
        assert_eq!(csv, "t_end_s,label\n1,sit\n2,walk\n");
    }

    #[test]
    fn csv_timestamps_keep_sub_second_epoch_precision() {
        let track = vec![Activity::Sit, Activity::Sit, Activity::Walk, Activity::Walk];
        let csv = label_track_to_csv(&track, 0.25);
        assert_eq!(csv, "t_end_s,label\n0.25,sit\n0.5,sit\n0.75,walk\n1,walk\n");
    }
}
