//! CSV export of simulation and experiment reports.
//!
//! The paper's figures are plots; these helpers render the corresponding series in
//! a plotting-friendly CSV form so the benchmark binaries (or a downstream user) can
//! pipe them straight into a plotting tool.

use crate::dse::DseReport;
use crate::experiments::{IbaComparisonReport, StabilitySweepReport};
use crate::simulation::SimulationReport;

/// CSV of a simulation run: one row per classified epoch
/// (`t_s,config,current_ua,predicted,actual,confidence,correct`).
pub fn simulation_to_csv(report: &SimulationReport) -> String {
    let mut out = String::from("t_s,config,current_ua,predicted,actual,confidence,correct\n");
    for r in report.records() {
        out.push_str(&format!(
            "{:.1},{},{:.3},{},{},{:.4},{}\n",
            r.t_s,
            r.config.label(),
            r.current_ua,
            r.predicted.name(),
            r.actual.name(),
            r.confidence,
            r.correct
        ));
    }
    out
}

/// CSV of a design-space exploration: one row per configuration
/// (`config,current_ua,accuracy,pareto`).
pub fn dse_to_csv(report: &DseReport) -> String {
    let mut out = String::from("config,current_ua,accuracy,pareto\n");
    for e in &report.evaluations {
        let on_front = report.pareto.iter().any(|p| p.config == e.config);
        out.push_str(&format!(
            "{},{:.3},{:.5},{}\n",
            e.config.label(),
            e.current_ua,
            e.accuracy,
            on_front
        ));
    }
    out
}

/// CSV of the stability-threshold sweep (Fig. 6a/6b series).
pub fn stability_sweep_to_csv(report: &StabilitySweepReport) -> String {
    let mut out = String::from(
        "threshold_s,baseline_accuracy,spot_accuracy,spot_confidence_accuracy,\
         baseline_current_ua,spot_current_ua,spot_confidence_current_ua\n",
    );
    for p in &report.points {
        out.push_str(&format!(
            "{},{:.5},{:.5},{:.5},{:.3},{:.3},{:.3}\n",
            p.threshold_s,
            p.baseline_accuracy,
            p.spot_accuracy,
            p.spot_confidence_accuracy,
            p.baseline_current_ua,
            p.spot_current_ua,
            p.spot_confidence_current_ua
        ));
    }
    out
}

/// CSV of the AdaSense vs intensity-based comparison (Fig. 7 bars).
pub fn iba_comparison_to_csv(report: &IbaComparisonReport) -> String {
    let mut out =
        String::from("setting,adasense_current_ua,adasense_accuracy,iba_current_ua,iba_accuracy\n");
    for r in &report.rows {
        out.push_str(&format!(
            "{},{:.3},{:.5},{:.3},{:.5}\n",
            r.setting.label(),
            r.adasense_current_ua,
            r.adasense_accuracy,
            r.iba_current_ua,
            r.iba_accuracy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerKind;
    use crate::simulation::{ScenarioSpec, Simulator};
    use crate::training::{ExperimentSpec, TrainedSystem};
    use adasense_data::{ActivityChangeSetting, DatasetSpec};
    use adasense_ml::TrainerConfig;

    fn tiny_system() -> (ExperimentSpec, TrainedSystem) {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 6, ..DatasetSpec::quick() },
            trainer: TrainerConfig { epochs: 10, ..TrainerConfig::default() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training succeeds");
        (spec, system)
    }

    #[test]
    fn simulation_csv_has_a_row_per_record_plus_header() {
        let (spec, system) = tiny_system();
        let report = Simulator::new(&spec, &system)
            .with_controller(ControllerKind::Spot { stability_threshold: 2 })
            .run(ScenarioSpec::sit_then_walk(6.0, 6.0))
            .unwrap();
        let csv = simulation_to_csv(&report);
        assert_eq!(csv.lines().count(), report.records().len() + 1);
        assert!(csv.starts_with("t_s,config"));
        assert!(csv.contains("F100_A128"));
    }

    #[test]
    fn sweep_and_comparison_csv_round_numbers_sensibly() {
        use crate::experiments::{
            iba_comparison, stability_sweep, IbaComparisonSettings, StabilitySweepSettings,
        };
        let (spec, system) = tiny_system();
        let sweep = stability_sweep(
            &spec,
            &system,
            &StabilitySweepSettings {
                thresholds: vec![3],
                scenario_duration_s: 30.0,
                scenarios_per_point: 1,
                setting: ActivityChangeSetting::Medium,
                ..StabilitySweepSettings::quick()
            },
        )
        .unwrap();
        let csv = stability_sweep_to_csv(&sweep);
        assert_eq!(csv.lines().count(), 2);

        let comparison = iba_comparison(
            &spec,
            &system,
            &IbaComparisonSettings {
                scenario_duration_s: 30.0,
                scenarios_per_setting: 1,
                ..IbaComparisonSettings::quick()
            },
        )
        .unwrap();
        let csv = iba_comparison_to_csv(&comparison);
        assert_eq!(csv.lines().count(), 4, "header plus one row per setting");
        assert!(csv.contains("High") && csv.contains("Low"));
    }

    #[test]
    fn dse_csv_marks_pareto_membership() {
        use crate::dse::{ConfigEvaluation, DseReport};
        use crate::pareto::{dominated_points, pareto_front};
        use adasense_sensor::SensorConfig;
        let evaluations: Vec<ConfigEvaluation> = SensorConfig::paper_pareto_front()
            .iter()
            .enumerate()
            .map(|(i, &config)| ConfigEvaluation {
                config,
                accuracy: 0.98 - 0.02 * i as f64,
                current_ua: 190.0 - 50.0 * i as f64,
            })
            .collect();
        let report = DseReport {
            pareto: pareto_front(&evaluations),
            dominated: dominated_points(&evaluations),
            evaluations,
        };
        let csv = dse_to_csv(&report);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains(",true"));
    }
}
